"""Benchmark: regenerate Table 1 rows (program synthesis, verification, shielding).

Each test produces one row of Table 1 at smoke scale and asserts the paper's
qualitative shape: the shield eliminates all unsafe episodes and intervenes on
only a fraction of decisions.
"""

import pytest

from repro.experiments.table1 import run_benchmark_row

from conftest import run_once

#: Rows exercised by the benchmark harness at smoke scale.  The remaining rows
#: (pendulum, cartpole, platoons, oscillator, ...) are covered by the other
#: benchmark files or by running ``python -m repro.experiments.table1``.
FAST_ROWS = [
    "satellite",
    "dcmotor",
    "tape",
    "magnetic_pointer",
    "suspension",
    "quadcopter",
    "datacenter",
    "self_driving",
    "lane_keeping",
]


@pytest.mark.parametrize("name", FAST_ROWS)
def test_table1_row(benchmark, smoke_scale, name):
    row = run_once(benchmark, run_benchmark_row, name, smoke_scale)
    assert row["shielded_failures"] == 0, f"shield failed to enforce safety on {name}"
    assert row["program_size"] >= 1
    assert row["interventions"] <= row["vars"] * smoke_scale.episodes * smoke_scale.steps


@pytest.mark.parametrize("name", ["4_car_platoon", "cartpole"])
def test_table1_row_medium_dimension(benchmark, smoke_scale, name):
    row = run_once(benchmark, run_benchmark_row, name, smoke_scale)
    if "error" in row:
        pytest.skip(f"{name}: {row['error']}")
    assert row["shielded_failures"] == 0
