"""Fault-recovery overhead and time-to-recover, tracked as ``BENCH_faults.json``.

Two measurements back the robustness claims:

* **Single-crash overhead** — the same sharded campaign runs fault-free and
  with one scripted worker crash (``os._exit(23)`` mid-shard).  Recovery must
  be *bit-identical* on every counter, re-execute only the crashed shard plus
  its in-flight casualties (never the whole run), and finish in under
  ``MAX_SINGLE_CRASH_OVERHEAD``x the fault-free wall clock.
* **Chaos scenarios** — the ``repro chaos`` scenarios (crash storm, hang with
  watchdog recovery, flaky IO) each report their own fault-free/faulty split,
  recovery overhead, and time-to-recover (seconds from run start to the last
  recovery action), all recorded in the artifact.

Sizes are overridable for CI smoke runs: ``REPRO_FAULT_BENCH_EPISODES``
(default 20000 — large enough that shard compute, not pool spawn cost,
dominates the overhead ratio), ``REPRO_FAULT_BENCH_STEPS`` (default 50), and
``REPRO_FAULT_BENCH_SCENARIOS`` (default ``crash-storm,hang,flaky-io``; the
``kill-resume`` scenario also runs here when listed, at the cost of two
subprocess sweeps).

Run directly (``PYTHONPATH=src python benchmarks/test_fault_recovery.py``) or
via pytest; both refresh the artifact at the repository root.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from repro.core import Shield
from repro.envs import make_environment
from repro.faults import FaultPlan, FaultSpec, fault_plan, run_scenario
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.networks import MLP
from repro.rl.policies import NeuralPolicy
from repro.shard import run_sharded_campaign

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_faults.json"
ENV_NAME = "pendulum"
EPISODES = int(os.environ.get("REPRO_FAULT_BENCH_EPISODES", "20000"))
STEPS = int(os.environ.get("REPRO_FAULT_BENCH_STEPS", "50"))
SCENARIOS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_FAULT_BENCH_SCENARIOS", "crash-storm,hang,flaky-io"
    ).split(",")
    if name.strip()
)
WORKERS = 2
SHARDS = 4
CRASH_SHARD = 2
SEED = 0

#: A single worker crash may cost at most this factor over the fault-free run.
MAX_SINGLE_CRASH_OVERHEAD = 2.0

CAMPAIGN_FIELDS = ("total_rewards", "unsafe_counts", "interventions", "steady_at")


def _make_shield(env, seed: int = 0) -> Shield:
    rng = np.random.default_rng(seed)
    d, m = env.state_dim, env.action_dim
    scale = env.action_high if env.action_high is not None else np.ones(m)
    network = MLP(d, (48, 32), m, output_scale=scale, seed=seed)
    program = AffineProgram(gain=rng.normal(scale=0.2, size=(m, d)), names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(d)) - 0.5, names=env.state_names
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=env.state_names)
    return Shield(
        env=env,
        neural_policy=NeuralPolicy(network),
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


def _run(env):
    shield = _make_shield(env, seed=SEED)
    start = time.perf_counter()
    result = run_sharded_campaign(
        env,
        shield=shield,
        episodes=EPISODES,
        steps=STEPS,
        seed=SEED,
        workers=WORKERS,
        shards=SHARDS,
    )
    return result, time.perf_counter() - start


def _single_crash_row(env) -> dict:
    _run(env)  # warm the kernel cache so both timed runs see the same state
    baseline, fault_free_s = _run(env)
    plan = FaultPlan(
        specs=[FaultSpec(site="shard.worker", kind="crash", index=CRASH_SHARD, attempt=0)]
    )
    with fault_plan(plan), warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        recovered, faulty_s = _run(env)
    identical = all(
        np.array_equal(getattr(baseline, field), getattr(recovered, field))
        for field in CAMPAIGN_FIELDS
    )
    events = recovered.stats["faults"]
    executions = recovered.stats["shard_executions"]
    return {
        "episodes": EPISODES,
        "steps": STEPS,
        "workers": WORKERS,
        "shards": SHARDS,
        "crashed_shard": CRASH_SHARD,
        "fault_free_seconds": round(fault_free_s, 4),
        "faulty_seconds": round(faulty_s, 4),
        "overhead": round(faulty_s / fault_free_s, 4),
        "time_to_recover_seconds": round(
            max((event["at_seconds"] for event in events), default=0.0), 4
        ),
        "bit_identical": identical,
        "shard_executions": executions,
        "retried_shards": sum(1 for count in executions if count > 1),
        "fault_events": events,
    }


def _scenario_row(name: str) -> dict:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return run_scenario(name, seed=SEED)


def measure_recovery() -> dict:
    env = make_environment(ENV_NAME)
    return {
        "env": ENV_NAME,
        "cpus": os.cpu_count() or 1,
        "single_crash": _single_crash_row(env),
        "scenarios": [_scenario_row(name) for name in SCENARIOS],
    }


def write_artifact(payload: dict) -> None:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def _check(payload: dict) -> None:
    crash = payload["single_crash"]
    assert crash["bit_identical"], "recovered campaign diverged from fault-free run"
    assert crash["fault_events"], "the scripted crash never fired"
    assert crash["shard_executions"][CRASH_SHARD] >= 2
    # Only the crashed shard and its in-flight casualties re-ran.
    assert crash["retried_shards"] < SHARDS
    assert crash["overhead"] < MAX_SINGLE_CRASH_OVERHEAD, (
        f"single-crash recovery cost {crash['overhead']:.2f}x "
        f"(bar {MAX_SINGLE_CRASH_OVERHEAD}x; "
        f"{crash['fault_free_seconds']:.2f}s -> {crash['faulty_seconds']:.2f}s)"
    )
    for scenario in payload["scenarios"]:
        assert scenario["ok"], (scenario["scenario"], scenario["detail"])


def test_fault_recovery_artifact():
    payload = measure_recovery()
    write_artifact(payload)
    _check(payload)


if __name__ == "__main__":
    payload = measure_recovery()
    write_artifact(payload)
    _check(payload)
    print(json.dumps(payload, indent=2))
