"""Benchmark: regenerate Fig. 6 / Example 4.3 (CEGIS trace on the Duffing oscillator)."""

from repro.experiments.fig6 import run_fig6

from conftest import run_once


def test_fig6_duffing_cegis(benchmark, smoke_scale):
    data = run_once(benchmark, run_fig6, smoke_scale)
    # The paper needs two branches; at smoke scale we only require that CEGIS
    # makes substantial progress: several verified branches whose union covers
    # (almost) the entire initial grid.  The full-coverage run is
    # ``python -m repro.experiments.fig6 --scale medium``.
    assert data["num_branches"] >= 1
    assert data["covered"] or data["init_grid_coverage"] > 0.85
    # Every branch invariant occupies a non-trivial part of the domain.
    for branch in data["branches"]:
        assert branch["grid"].sum() > 0
