"""Verification-kernel speed: portfolio dispatch + verdict cache, tracked as
``BENCH_verification.json``.

Two effects are measured on a fixed query (the satellite benchmark under its
LQR teacher program, re-verified from the full initial region):

* **portfolio vs single backend** — ``backend="auto"`` dispatches the
  capability-filtered portfolio cheapest-first, so on a linear plant it
  answers at Lyapunov cost (microseconds) while a pinned sampled-LP backend
  pays the full search; every backend must return the same verdict;
* **verdict cache on vs off** — re-verifying the identical (program,
  environment, init box, config) query with a store-backed
  :class:`~repro.store.VerdictCache` must be served from cache with a
  bit-identical outcome, turning repeat sweeps into JSON reads.

The cached repeat must be ≥ 5x faster than the fresh barrier proof (measured
≈ 100-1000x), and the auto portfolio must not be slower than the most
expensive single backend it subsumes.

Run directly (``PYTHONPATH=src python benchmarks/test_verification_speed.py``)
or via pytest; both refresh the artifact at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.baselines import make_lqr_policy
from repro.certificates import backend_names
from repro.core import VerificationConfig, verify_program
from repro.envs import make_environment
from repro.lang import AffineProgram
from repro.store import VerdictCache

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_verification.json"

REPEATS = 3


def _query():
    env = make_environment("satellite")
    program = AffineProgram(gain=make_lqr_policy(env).gain)
    return env, program


def _timed_verify(env, program, config, verdict_cache=None):
    start = time.perf_counter()
    outcome = verify_program(env, program, config=config, verdict_cache=verdict_cache)
    return outcome, time.perf_counter() - start


def measure(tmp_dir: Path) -> tuple:
    env, program = _query()
    rows: dict = {"query": "satellite/LQR over S0", "backends": {}}
    outcomes = {}

    for name in ["auto"] + backend_names():
        outcome, seconds = _timed_verify(env, program, VerificationConfig(backend=name))
        outcomes[name] = outcome
        rows["backends"][name] = {
            "verified": outcome.verified,
            "winning_backend": outcome.backend,
            "attempts": list(outcome.attempts),
            "wall_clock_seconds": round(seconds, 6),
        }

    single_costs = [
        rows["backends"][name]["wall_clock_seconds"] for name in backend_names()
    ]
    rows["portfolio_vs_worst_single"] = round(
        max(single_costs) / max(rows["backends"]["auto"]["wall_clock_seconds"], 1e-9), 2
    )

    # Verdict cache: fresh barrier proof vs cached repeats of the same query.
    cache = VerdictCache(tmp_dir / "verdicts")
    config = VerificationConfig(backend="barrier")
    fresh, fresh_seconds = _timed_verify(env, program, config, verdict_cache=cache)
    repeat_seconds = []
    cached_outcomes = []
    for _ in range(REPEATS):
        outcome, seconds = _timed_verify(env, program, config, verdict_cache=cache)
        cached_outcomes.append(outcome)
        repeat_seconds.append(seconds)
    nocache_seconds = []
    for _ in range(REPEATS):
        _outcome, seconds = _timed_verify(env, program, config)
        nocache_seconds.append(seconds)
    rows["verdict_cache"] = {
        "fresh_seconds": round(fresh_seconds, 6),
        "cached_repeat_seconds": [round(s, 6) for s in repeat_seconds],
        "uncached_repeat_seconds": [round(s, 6) for s in nocache_seconds],
        "hits": cache.hits,
        "misses": cache.misses,
        "speedup": round(min(nocache_seconds) / max(min(repeat_seconds), 1e-9), 2),
    }
    return rows, outcomes, fresh, cached_outcomes


def write_artifact(rows: dict) -> None:
    ARTIFACT.write_text(json.dumps(rows, indent=2) + "\n")


def test_verification_speed_artifact(tmp_path):
    rows, outcomes, fresh, cached = measure(tmp_path)
    write_artifact(rows)

    # Every backend agrees with the portfolio on the verdict.
    verdicts = {name: outcome.verified for name, outcome in outcomes.items()}
    assert all(verdicts.values()), verdicts

    # The portfolio answers at cheapest-backend cost: never slower than the
    # most expensive single backend (in practice it is orders of magnitude
    # faster, because lyapunov wins the dispatch on a linear plant).
    assert rows["portfolio_vs_worst_single"] >= 1.0, rows
    assert rows["backends"]["auto"]["winning_backend"] == "lyapunov"

    # Cached repeats are served from the store with bit-identical outcomes.
    assert all(outcome.from_cache for outcome in cached)
    for outcome in cached:
        assert outcome.verified == fresh.verified
        assert outcome.backend == fresh.backend
        assert outcome.invariant == fresh.invariant
    assert rows["verdict_cache"]["hits"] == REPEATS
    assert rows["verdict_cache"]["speedup"] >= 5.0, rows["verdict_cache"]


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        measured, *_rest = measure(Path(tmp))
    write_artifact(measured)
    print(json.dumps(measured, indent=2))
