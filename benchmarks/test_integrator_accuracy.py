"""Ablation: Euler discretisation vs. higher-order integration (paper footnote 2).

The verified transition relation is the Euler discretisation; these benchmarks
measure (a) how far an Euler rollout drifts from an RK4 rollout of the same
closed loop, and (b) what the more accurate integrators cost in simulation time.
"""

import numpy as np
import pytest

from repro.envs import IntegratedSimulator, discretization_gap, make_environment
from repro.lang import AffineProgram

from conftest import run_once

_CONTROLLERS = {
    "pendulum": AffineProgram(gain=[[-12.05, -5.87]]),
    "duffing": AffineProgram(gain=[[0.39, -1.41]]),
}


@pytest.mark.parametrize("name", ["pendulum", "duffing"])
def test_euler_vs_rk4_gap(benchmark, name):
    """Maximum state gap between the verified (Euler) model and an RK4 reference."""
    env = make_environment(name)
    program = _CONTROLLERS[name]

    def run():
        return discretization_gap(env, program, steps=500)

    gap = run_once(benchmark, run)
    # At the paper's 10 ms time step the discretisation error stays small, which
    # is what makes verifying the Euler model meaningful for the real system.
    assert gap < 0.05


@pytest.mark.parametrize("method", ["euler", "rk2", "rk4"])
def test_integrator_simulation_cost(benchmark, method):
    """Per-rollout simulation cost of each integration scheme (pendulum, 1000 steps)."""
    env = make_environment("pendulum")
    program = _CONTROLLERS["pendulum"]
    simulator = IntegratedSimulator(env, method=method)

    def run():
        return simulator.simulate(
            program, steps=1000, rng=np.random.default_rng(0), initial_state=np.array([0.2, 0.0])
        )

    trajectory = run_once(benchmark, run)
    assert trajectory.unsafe_steps == 0
