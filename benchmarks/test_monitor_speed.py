"""Batched vs. scalar *monitored* campaign speedup, tracked as ``BENCH_monitor.json``.

Fleet monitoring adds bookkeeping on top of the rollout spine — executed-action
prediction verdicts, invariant-excursion checks, barrier values, residual
accumulation for the disturbance estimate — so its speedup is pinned separately
from the bare rollout benchmark: the same 100-episode x 250-step monitored
campaign runs through the sequential :func:`monitor_episode` reference and the
:class:`MonitoredBatchedCampaign` lockstep engine, and the measured speedup is
recorded at the repository root.

Run directly (``PYTHONPATH=src python benchmarks/test_monitor_speed.py``) or
via pytest; both refresh the artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import Shield
from repro.envs import make_environment
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl import train_oracle
from repro.runtime import monitor_episode, monitor_fleet

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_monitor.json"
ENVIRONMENTS = ("pendulum", "satellite")
EPISODES = 100
STEPS = 250

_PROGRAM_GAINS = {
    "pendulum": [[-12.05, -5.87]],
    "satellite": [[-2.5, -2.0]],
}
_BARRIER_WEIGHTS = {
    "pendulum": [1.0, 0.5],
    "satellite": [1.0, 1.0],
}


def _make_shield(env, oracle) -> Shield:
    program = AffineProgram(gain=_PROGRAM_GAINS[env.name], names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.diag(_BARRIER_WEIGHTS[env.name])) - 0.2,
        names=env.state_names,
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=env.state_names)
    return Shield(
        env=env,
        neural_policy=oracle,
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


def measure_monitoring_speedup(env_name: str, episodes: int = EPISODES, steps: int = STEPS) -> dict:
    """Time the same monitored campaign through the scalar and batched engines."""
    env = make_environment(env_name)
    oracle = train_oracle(env, hidden_sizes=(48, 32), seed=0).policy

    # Sequential reference: one monitored episode at a time over the same
    # initial-state stream the batched fleet will see.
    shield = _make_shield(env, oracle)
    initial_states = env.sample_initial_states(np.random.default_rng(0), episodes)
    start = time.perf_counter()
    reports = [
        monitor_episode(
            shield, steps=steps, rng=np.random.default_rng(0), initial_state=s0
        )
        for s0 in initial_states
    ]
    scalar_seconds = time.perf_counter() - start

    shield = _make_shield(env, oracle)
    start = time.perf_counter()
    fleet = monitor_fleet(
        shield, episodes=episodes, steps=steps, rng=np.random.default_rng(0)
    )
    batched_seconds = time.perf_counter() - start

    scalar_interventions = sum(r.interventions for r in reports)
    scalar_mismatches = sum(r.model_mismatches for r in reports)
    scalar_excursions = sum(r.invariant_excursions for r in reports)
    assert fleet.decisions == sum(r.decisions for r in reports)
    return {
        "env": env_name,
        "episodes": episodes,
        "steps": steps,
        "scalar_seconds": round(scalar_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(scalar_seconds / batched_seconds, 2),
        "interventions_scalar": scalar_interventions,
        "interventions_batched": fleet.total_interventions,
        "mismatches_scalar": scalar_mismatches,
        "mismatches_batched": fleet.total_model_mismatches,
        "excursions_scalar": scalar_excursions,
        "excursions_batched": fleet.total_invariant_excursions,
    }


def write_artifact(rows) -> None:
    ARTIFACT.write_text(json.dumps({"campaigns": list(rows)}, indent=2) + "\n")


def test_batched_monitoring_speedup_artifact():
    rows = [measure_monitoring_speedup(name) for name in ENVIRONMENTS]
    write_artifact(rows)
    for row in rows:
        # The acceptance bar: monitoring a 100x250 fleet in lockstep must be at
        # least 10x faster than the sequential monitor.
        assert row["speedup"] >= 10.0, row
        # Same campaign, same seed, disturbance-free envs: identical counters.
        assert row["interventions_scalar"] == row["interventions_batched"], row
        assert row["mismatches_scalar"] == row["mismatches_batched"], row
        assert row["excursions_scalar"] == row["excursions_batched"], row


if __name__ == "__main__":
    rows = [measure_monitoring_speedup(name) for name in ENVIRONMENTS]
    write_artifact(rows)
    print(json.dumps({"campaigns": rows}, indent=2))
