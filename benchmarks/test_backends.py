"""Ablation: certificate backends and decision procedures (DESIGN.md §5, item 1).

Compares, on the same verification problems,

* the exact quadratic Lyapunov backend vs. the sampled-LP barrier backend
  (which the paper's Mosek/SOS pipeline corresponds to), and
* the interval branch-and-bound decision procedure vs. the Handelman/Farkas LP
  prover on condition-(8)/(9)-style queries.
"""

import numpy as np
import pytest

from repro.baselines import make_lqr_policy
from repro.certificates import Box, BranchAndBoundVerifier, FarkasVerifier
from repro.core import VerificationConfig, verify_program
from repro.envs import make_environment
from repro.lang import AffineProgram
from repro.polynomials import Polynomial

from conftest import run_once


@pytest.mark.parametrize("backend", ["lyapunov", "barrier"])
def test_backend_verification_time(benchmark, backend):
    """Wall-clock cost of certifying the same program with each backend."""
    env = make_environment("satellite")
    program = AffineProgram(
        gain=make_lqr_policy(env).gain, action_low=env.action_low, action_high=env.action_high
    )

    def run():
        return verify_program(
            env, program, config=VerificationConfig(backend=backend, invariant_degree=2)
        )

    outcome = run_once(benchmark, run)
    assert outcome.verified
    assert outcome.backend == backend


@pytest.mark.parametrize("prover", ["bnb", "farkas"])
def test_decision_procedure_cost(benchmark, prover):
    """Branch-and-bound vs. Handelman LP on a batch of condition-(8) style queries.

    Each query asks whether a quadratic barrier is positive on a far-away unsafe
    box — the shape discharged once per unsafe cover box in every CEGIS round.
    """
    rng = np.random.default_rng(0)
    barrier_matrices = [np.diag(rng.uniform(0.5, 2.0, size=2)) for _ in range(10)]
    unsafe = Box((2.0, -1.0), (3.0, 1.0))
    bnb = BranchAndBoundVerifier(tolerance=1e-9)
    farkas = FarkasVerifier(max_degree=2)

    def run():
        proved = 0
        for matrix in barrier_matrices:
            barrier = Polynomial.quadratic_form(matrix) - 1.0
            if prover == "bnb":
                proved += bool(bnb.prove_positive(barrier, [unsafe]).verified)
            else:
                proved += bool(farkas.prove_positive(barrier, [unsafe]).proved)
        return proved

    proved = run_once(benchmark, run)
    assert proved == len(barrier_matrices)


@pytest.mark.parametrize("degree", [2, 4])
def test_barrier_backend_degree_cost_on_nonlinear_plant(benchmark, degree):
    """Invariant-degree cost on a polynomial (Duffing) closed loop — the Table 2 axis.

    The initial region is the shrunk box Algorithm 2 would hand to the verifier
    for the first synthesized policy of Example 4.3 (a single linear program is
    *not* verifiable over the whole ``S0`` — that is why CEGIS needs a second
    branch, cf. ``benchmarks/test_fig6.py``).
    """
    env = make_environment("duffing")
    program = AffineProgram(gain=[[0.39, -1.41]], names=env.state_names)
    shrunk_init = Box((-1.0, -0.8), (1.0, 0.8))

    def run():
        return verify_program(
            env,
            program,
            init_box=shrunk_init,
            config=VerificationConfig(backend="barrier", invariant_degree=degree),
        )

    outcome = run_once(benchmark, run)
    assert outcome.backend == "barrier"
    assert outcome.verified, outcome.failure_reason
