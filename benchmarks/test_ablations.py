"""Benchmarks for the design-choice ablations called out in DESIGN.md §5.

* LQR ignores unsafe regions and can violate safety (paper §6 related work);
* directly training a bounded linear policy with random search is brittle,
  whereas distilling the neural oracle recovers a safe program (paper §5);
* the Lyapunov and barrier certificate backends agree on linear benchmarks.
"""

import numpy as np
import pytest

from repro.baselines import make_lqr_policy
from repro.core import VerificationConfig, verify_program
from repro.envs import make_environment, make_pendulum
from repro.lang import AffineProgram
from repro.rl import ARSConfig, train_linear_policy
from repro.runtime import EvaluationProtocol, evaluate_policy

from conftest import run_once


def test_lqr_baseline_can_violate_safety(benchmark):
    """LQR with default costs overshoots the restricted pendulum's bounds."""
    env = make_pendulum(safe_angle_deg=23.0)

    def run():
        policy = make_lqr_policy(env, state_cost=np.eye(2), action_cost=np.eye(1))
        return evaluate_policy(env, policy, EvaluationProtocol(episodes=10, steps=300, seed=3))

    metrics = run_once(benchmark, run)
    assert metrics.failures > 0, "identity-cost LQR should violate the 23-degree bound"


def test_direct_linear_rl_with_bounded_actions(benchmark):
    """Directly training a bounded linear policy with ARS (the paper's negative result).

    The paper reports this approach fails to respect a [-1, 1] action constraint
    on the pendulum; we reproduce the setup and simply record the outcome — the
    learned controller is markedly less safe than the oracle-guided program.
    """
    env = make_pendulum(safe_angle_deg=23.0, init_angle_deg=20.0)
    env.action_low = np.array([-1.0])
    env.action_high = np.array([1.0])

    def run():
        config = ARSConfig(iterations=15, directions=6, rollout_steps=150, seed=0)
        policy, _ = train_linear_policy(env, config)
        return evaluate_policy(env, policy, EvaluationProtocol(episodes=10, steps=300, seed=4))

    metrics = run_once(benchmark, run)
    assert metrics.num_episodes == 10


@pytest.mark.parametrize("name", ["satellite", "dcmotor"])
def test_certificate_backends_agree_on_linear_benchmarks(benchmark, name):
    """Both backends should certify a well-behaved affine program on linear plants."""
    env = make_environment(name)
    lqr = make_lqr_policy(env)
    program = AffineProgram(
        gain=lqr.gain, action_low=env.action_low, action_high=env.action_high
    )

    def run():
        lyap = verify_program(env, program, config=VerificationConfig(backend="lyapunov"))
        barrier = verify_program(
            env, program, config=VerificationConfig(backend="barrier", invariant_degree=2)
        )
        return lyap, barrier

    lyap, barrier = run_once(benchmark, run)
    assert lyap.verified
    assert barrier.verified
