"""Sharded fleet scaling curves → ``BENCH_shard.json``.

Runs the same 10^4-episode shielded campaign (and a monitored fleet alongside)
at 1/2/4/8 workers and records episodes/sec per worker count.  Two claims are
checked, with very different strictness:

* **Counters are worker-count invariant** — every row's unsafe, intervention,
  and steady counters (and the monitor's mismatch/excursion counters and
  disturbance estimate) must be *bit-identical* to the ``workers=1`` row.
  This is asserted unconditionally: it is the sharded runtime's correctness
  contract and holds on any machine.
* **Throughput scales** — ≥1.7x at 2 workers and ≥3x at 8 on the shielded
  campaign.  Speedup is only asserted when the machine actually exposes that
  many cores (``os.sched_getaffinity``); a 1-core CI runner still produces the
  artifact and the identity assertions, but cannot meaningfully gate scaling.

Row sizes and worker counts are overridable for CI smoke runs:
``REPRO_SHARD_BENCH_EPISODES`` (default 10000), ``REPRO_SHARD_BENCH_STEPS``
(default 100), ``REPRO_SHARD_BENCH_WORKERS`` (default ``1,2,4,8``).

Run directly (``PYTHONPATH=src python benchmarks/test_shard_speed.py``) or via
pytest; both refresh the artifact at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import Shield
from repro.envs import make_disturbance, make_environment
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.networks import MLP
from repro.rl.policies import NeuralPolicy
from repro.shard import monitor_fleet_sharded, run_sharded_campaign

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_shard.json"
ENV_NAME = "pendulum"
EPISODES = int(os.environ.get("REPRO_SHARD_BENCH_EPISODES", "10000"))
STEPS = int(os.environ.get("REPRO_SHARD_BENCH_STEPS", "100"))
WORKER_COUNTS = tuple(
    int(w) for w in os.environ.get("REPRO_SHARD_BENCH_WORKERS", "1,2,4,8").split(",")
)
SEED = 0

#: Scaling bars, gated on the machine actually exposing that many cores.
MIN_SPEEDUP = {2: 1.7, 4: 2.2, 8: 3.0}


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _make_shield(env, seed: int = 0) -> Shield:
    rng = np.random.default_rng(seed)
    d, m = env.state_dim, env.action_dim
    scale = env.action_high if env.action_high is not None else np.ones(m)
    network = MLP(d, (48, 32), m, output_scale=scale, seed=seed)
    program = AffineProgram(gain=rng.normal(scale=0.2, size=(m, d)), names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(d)) - 0.5, names=env.state_names
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=env.state_names)
    return Shield(
        env=env,
        neural_policy=NeuralPolicy(network),
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


def _campaign_counters(result) -> dict:
    return {
        "unsafe_steps": int(np.sum(result.unsafe_counts)),
        "failures": result.failures,
        "interventions": result.total_interventions,
        "steady_episodes": int(np.sum(result.steady_at >= 0)),
        "reward_sum": float(np.sum(result.total_rewards)),
    }


def _monitor_counters(report) -> dict:
    estimate = report.disturbance_estimate
    return {
        "interventions": report.total_interventions,
        "mismatches": report.total_model_mismatches,
        "excursions": report.total_invariant_excursions,
        "unsafe_steps": int(np.sum(report.unsafe_steps)),
        "peak_barrier_sum": float(np.sum(report.peak_barrier_values)),
        "estimate_mean": None if estimate is None else [float(v) for v in estimate.mean],
    }


def _shielded_row(env, workers: int) -> dict:
    shield = _make_shield(env, seed=SEED)
    start = time.perf_counter()
    result = run_sharded_campaign(
        env, shield=shield, episodes=EPISODES, steps=STEPS, seed=SEED, workers=workers
    )
    elapsed = time.perf_counter() - start
    return {
        "workers": workers,
        "seconds": round(elapsed, 4),
        "episodes_per_second": round(EPISODES / elapsed, 1),
        "mode": result.stats["mode"],
        "counters": _campaign_counters(result),
    }


def _monitored_row(env, workers: int) -> dict:
    shield = _make_shield(env, seed=SEED)
    disturbance = make_disturbance(
        "uniform", env.state_dim, magnitude=0.02, rng=np.random.default_rng(SEED + 1)
    )
    start = time.perf_counter()
    report = monitor_fleet_sharded(
        shield,
        episodes=EPISODES,
        steps=STEPS,
        seed=SEED,
        disturbance=disturbance,
        workers=workers,
    )
    elapsed = time.perf_counter() - start
    return {
        "workers": workers,
        "seconds": round(elapsed, 4),
        "episodes_per_second": round(EPISODES / elapsed, 1),
        "mode": report.shard_stats["mode"],
        "counters": _monitor_counters(report),
    }


def measure_scaling() -> dict:
    env = make_environment(ENV_NAME)
    shielded = [_shielded_row(env, workers) for workers in WORKER_COUNTS]
    monitored = [_monitored_row(env, workers) for workers in WORKER_COUNTS]
    return {
        "env": ENV_NAME,
        "episodes": EPISODES,
        "steps": STEPS,
        "cpus": _available_cpus(),
        "shielded": shielded,
        "monitored": monitored,
    }


def write_artifact(payload: dict) -> None:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def _check(payload: dict) -> None:
    cpus = payload["cpus"]
    for section in ("shielded", "monitored"):
        rows = payload[section]
        reference = rows[0]
        assert reference["workers"] == min(WORKER_COUNTS)
        for row in rows:
            # Worker-count invariance: every counter identical to the first row.
            assert row["counters"] == reference["counters"], (section, row["workers"])
        if section != "shielded":
            continue
        for row in rows[1:]:
            bar = MIN_SPEEDUP.get(row["workers"])
            if bar is None or cpus < row["workers"]:
                continue  # not enough cores to gate this row's scaling
            speedup = reference["seconds"] / row["seconds"]
            assert speedup >= bar, (
                f"{row['workers']} workers: {speedup:.2f}x < {bar}x "
                f"({reference['seconds']:.2f}s -> {row['seconds']:.2f}s)"
            )


def test_sharded_scaling_artifact():
    payload = measure_scaling()
    write_artifact(payload)
    _check(payload)


if __name__ == "__main__":
    payload = measure_scaling()
    write_artifact(payload)
    _check(payload)
    print(json.dumps(payload, indent=2))
