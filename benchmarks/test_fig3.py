"""Benchmark: regenerate Fig. 3 (pendulum invariants, original vs. restricted safety)."""

from repro.experiments.fig3 import run_fig3_variant

from conftest import run_once


def test_fig3_restricted_pendulum(benchmark, smoke_scale):
    data = run_once(benchmark, run_fig3_variant, 30.0, smoke_scale)
    # The §2.2 statistics: the shield prevents every violation and the
    # intervention rate stays tiny.
    assert data["shielded_failures"] == 0
    if data["decisions"]:
        assert data["interventions"] / data["decisions"] < 0.2
    # The invariant is a strict subset of the working domain (Fig. 3 shading).
    grid = data["grid"]
    assert 0 < grid.sum() < grid.size


def test_fig3_original_pendulum(benchmark, smoke_scale):
    data = run_once(benchmark, run_fig3_variant, 90.0, smoke_scale)
    assert data["shielded_failures"] == 0
