"""Branch-and-bound engine speed: vectorized frontier vs scalar reference,
tracked as ``BENCH_bnb.json``.

Three hard verification queries are timed under both engines:

* ``platoon8_decrease`` — the 8-dimensional car-platoon Lyapunov-decrease
  condition constrained away from the origin; interval bounds stay
  inconclusive so the search exhausts its full box budget (the worst case
  for the scalar engine: one Python iteration per box);
* ``satellite_disturbed_condition10`` — the lifted (state, disturbance)
  product-box induction query of condition (10), a 4-variable constrained
  query that explores tens of thousands of boxes before refuting;
* ``satellite_bad_gain_refuted`` — a deliberately destabilizing gain whose
  decrease condition is genuinely violated, terminating early with a
  counterexample (guards the cheap-query path from batching overhead).

Because both engines share the same batch-size-independent numeric kernels
and the same canonical breadth-first frontier order, every row must agree
*exactly* — verdict, counterexample, ``boxes_explored``,
``max_depth_reached`` — and the frontier engine must be at least 3x faster
on at least one hard row (measured ≈ 100-250x on the platoon and
condition-(10) rows).

Run directly (``PYTHONPATH=src python benchmarks/test_bnb_speed.py``) or via
pytest; both refresh the artifact at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.baselines import make_lqr_policy
from repro.certificates import Box, BranchAndBoundVerifier
from repro.envs import make_environment
from repro.lang import AffineProgram
from repro.polynomials import Polynomial

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_bnb.json"

MIN_SPEEDUP = 3.0


def _lyapunov_decrease(env, program):
    closed_loop = env.closed_loop_polynomials(program)
    value = Polynomial.quadratic_form(np.eye(env.state_dim))
    return value.substitute(closed_loop) - value, value


def _platoon_query():
    env = make_environment("8_car_platoon")
    program = AffineProgram(gain=make_lqr_policy(env).gain)
    decrease, value = _lyapunov_decrease(env, program)
    return {
        "label": "platoon8_decrease",
        "target": decrease,
        "boxes": [env.safe_box],
        "constraints": [0.01 - value],
        "kwargs": {"max_boxes": 5_000, "min_width": 1e-9},
    }


def _condition_ten_query():
    env = make_environment("satellite", disturbance_bound=[0.02, 0.02])
    program = AffineProgram(gain=make_lqr_policy(env).gain)
    closed_loop = env.closed_loop_polynomials(program)
    n = env.state_dim
    lift = [Polynomial.variable(i, 2 * n) for i in range(n)]
    barrier = Polynomial.quadratic_form(np.eye(n)) - 0.5
    successors = [
        poly.substitute(lift) + env.dt * Polynomial.variable(n + i, 2 * n)
        for i, poly in enumerate(closed_loop)
    ]
    bound = np.asarray(env.disturbance_bound, dtype=float)
    product_box = Box(
        low=tuple(env.safe_box.low) + tuple(-bound),
        high=tuple(env.safe_box.high) + tuple(bound),
    )
    return {
        "label": "satellite_disturbed_condition10",
        "target": barrier.substitute(successors),
        "boxes": [product_box],
        "constraints": [barrier.substitute(lift)],
        "kwargs": {"max_boxes": 20_000, "min_width": 0.01},
    }


def _bad_gain_query():
    env = make_environment("satellite")
    gain = 5.0 * np.ones((env.action_dim, env.state_dim))
    decrease, value = _lyapunov_decrease(env, AffineProgram(gain=gain))
    return {
        "label": "satellite_bad_gain_refuted",
        "target": decrease,
        "boxes": [env.safe_box],
        "constraints": [value - 0.25],
        "kwargs": {"max_boxes": 50_000, "min_width": 1e-4},
    }


def _timed_prove(query, frontier: bool):
    verifier = BranchAndBoundVerifier(frontier=frontier, **query["kwargs"])
    start = time.perf_counter()
    result = verifier.prove_nonpositive(
        query["target"], query["boxes"], query["constraints"]
    )
    return result, time.perf_counter() - start


def measure() -> tuple:
    rows: dict = {"min_speedup_required": MIN_SPEEDUP, "queries": {}}
    results = {}
    for query in (_platoon_query(), _condition_ten_query(), _bad_gain_query()):
        scalar, scalar_seconds = _timed_prove(query, frontier=False)
        frontier, frontier_seconds = _timed_prove(query, frontier=True)
        results[query["label"]] = (scalar, frontier)
        counterexample = frontier.counterexample
        rows["queries"][query["label"]] = {
            "verified": frontier.verified,
            "boxes_explored": frontier.boxes_explored,
            "max_depth_reached": frontier.max_depth_reached,
            "counterexample": (
                None if counterexample is None else [float(v) for v in counterexample]
            ),
            "scalar_seconds": round(scalar_seconds, 6),
            "frontier_seconds": round(frontier_seconds, 6),
            "speedup": round(scalar_seconds / max(frontier_seconds, 1e-9), 2),
        }
    rows["best_speedup"] = max(row["speedup"] for row in rows["queries"].values())
    return rows, results


def write_artifact(rows: dict) -> None:
    ARTIFACT.write_text(json.dumps(rows, indent=2) + "\n")


def _assert_identical(scalar, frontier, label):
    assert scalar.verified == frontier.verified, label
    assert scalar.boxes_explored == frontier.boxes_explored, label
    assert scalar.max_depth_reached == frontier.max_depth_reached, label
    if scalar.counterexample is None or frontier.counterexample is None:
        assert scalar.counterexample is None and frontier.counterexample is None, label
    else:
        assert np.array_equal(scalar.counterexample, frontier.counterexample), label


def test_bnb_speed_artifact():
    rows, results = measure()
    write_artifact(rows)

    # The engines agree exactly on every row — the speedup is free of any
    # semantic drift.
    for label, (scalar, frontier) in results.items():
        _assert_identical(scalar, frontier, label)

    # The hard rows terminate the way they were designed to.
    assert not results["platoon8_decrease"][1].verified
    assert results["platoon8_decrease"][1].max_depth_reached
    assert results["platoon8_decrease"][1].boxes_explored == 5_000
    assert not results["satellite_bad_gain_refuted"][1].verified
    assert results["satellite_bad_gain_refuted"][1].counterexample is not None

    # At least one hard query shows the headline win.
    assert rows["best_speedup"] >= MIN_SPEEDUP, rows


if __name__ == "__main__":
    measured, _results = measure()
    write_artifact(measured)
    print(json.dumps(measured, indent=2))
