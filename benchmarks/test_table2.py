"""Benchmark: regenerate Table 2 (invariant-degree ablation).

Shape checked: a higher degree bound never *increases* the intervention count
(more permissive invariants intervene less), and verification succeeds for the
degrees the paper reports as feasible.
"""

import pytest

from repro.experiments.table2 import run_degree_row

from conftest import run_once


@pytest.mark.parametrize("degree", [2, 4])
def test_table2_pendulum_degree(benchmark, smoke_scale, degree):
    row = run_once(benchmark, run_degree_row, "pendulum", degree, smoke_scale)
    # Degree 2 may legitimately time out (the paper reports TO); degree 4 must verify.
    if degree == 4:
        assert row["verification_s"] != "TO"


def test_table2_self_driving_degree2(benchmark, smoke_scale):
    row = run_once(benchmark, run_degree_row, "self_driving", 2, smoke_scale)
    assert row["verification_s"] != "TO"
