"""Compiled vs. interpreted-batched campaign speedup → ``BENCH_compile.json``.

PR 1's batched engine advanced campaigns in lockstep but still *interpreted*
the artifacts: each step re-walked expression trees, evaluated barrier
polynomials through ``np.power`` tables, and crossed the policy → shield → env
dispatch boundary with a double dynamics evaluation.  The compiled execution
layer (``repro.compile``) lowers those artifacts once and fuses the whole
closed-loop step; this benchmark runs the same 100-episode × 250-step
*shielded* campaign through both engines and records the wall-clock ratio.

The acceptance bar is ≥ 3x on the high-dimensional benchmarks (4/8-car
platoon, oscillator), where the interpreted path's per-step overhead dominates
hardest; the low-dimensional rows (satellite, pendulum, cartpole) are recorded
for the full picture but not ratio-asserted — their compiled advantage is a
few tens of ms, too small a margin to gate CI on a shared runner.  Counters
must be *identical* between the two engines on every row — same
interventions, same unsafe steps — which is what makes the ratio a pure
execution-layer comparison.

Run directly (``PYTHONPATH=src python benchmarks/test_compile_speed.py``) or
via pytest; both refresh the artifact at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.compile import kernel_cache_stats, set_compilation
from repro.core import Shield
from repro.envs import make_environment
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.networks import MLP
from repro.rl.policies import NeuralPolicy
from repro.runtime import EvaluationProtocol, evaluate_policy

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_compile.json"
EPISODES = 100
STEPS = 250

#: Envs that must clear the 3x acceptance bar, and record-only context rows.
FAST_ENVS = ("4_car_platoon", "8_car_platoon", "oscillator")
CONTEXT_ENVS = ("satellite", "pendulum", "cartpole")
MIN_SPEEDUP_FAST = 3.0


def _make_shield(env, seed: int = 0) -> Shield:
    rng = np.random.default_rng(seed)
    d, m = env.state_dim, env.action_dim
    scale = env.action_high if env.action_high is not None else np.ones(m)
    network = MLP(d, (48, 32), m, output_scale=scale, seed=seed)
    program = AffineProgram(gain=rng.normal(scale=0.2, size=(m, d)), names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(d)) - 0.5, names=env.state_names
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=env.state_names)
    return Shield(
        env=env,
        neural_policy=NeuralPolicy(network),
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


def _run(env, protocol, compiled: bool):
    """One shielded campaign through the chosen engine; best of two runs."""
    set_compilation(compiled)
    try:
        best = float("inf")
        metrics = None
        for _ in range(2):
            shield = _make_shield(env)
            start = time.perf_counter()
            metrics = evaluate_policy(env, shield, protocol, shield=shield)
            best = min(best, time.perf_counter() - start)
        return best, metrics
    finally:
        set_compilation(None)


def measure_compile_speedup(env_name: str, episodes: int = EPISODES, steps: int = STEPS) -> dict:
    env = make_environment(env_name)
    protocol = EvaluationProtocol(episodes=episodes, steps=steps, seed=0)
    interpreted_seconds, interpreted_metrics = _run(env, protocol, compiled=False)
    compiled_seconds, compiled_metrics = _run(env, protocol, compiled=True)
    unsafe_interpreted = sum(e.unsafe_steps for e in interpreted_metrics.episodes)
    unsafe_compiled = sum(e.unsafe_steps for e in compiled_metrics.episodes)
    return {
        "env": env_name,
        "episodes": episodes,
        "steps": steps,
        "interpreted_seconds": round(interpreted_seconds, 4),
        "compiled_seconds": round(compiled_seconds, 4),
        "speedup": round(interpreted_seconds / compiled_seconds, 2),
        "interventions_interpreted": interpreted_metrics.interventions,
        "interventions_compiled": compiled_metrics.interventions,
        "unsafe_interpreted": unsafe_interpreted,
        "unsafe_compiled": unsafe_compiled,
    }


def write_artifact(rows) -> None:
    payload = {"campaigns": list(rows), "kernel_cache": kernel_cache_stats()}
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def test_compiled_campaign_speedup_artifact():
    rows = [measure_compile_speedup(name) for name in FAST_ENVS + CONTEXT_ENVS]
    write_artifact(rows)
    for row in rows:
        # The execution layers must be observationally equivalent: identical
        # shield interventions and unsafe-step counters on the same seed.
        assert row["interventions_interpreted"] == row["interventions_compiled"], row
        assert row["unsafe_interpreted"] == row["unsafe_compiled"], row
        if row["env"] in FAST_ENVS:
            assert row["speedup"] >= MIN_SPEEDUP_FAST, row


if __name__ == "__main__":
    all_rows = [measure_compile_speedup(name) for name in FAST_ENVS + CONTEXT_ENVS]
    write_artifact(all_rows)
    print(json.dumps({"campaigns": all_rows}, indent=2))
