"""Ablation: per-decision cost of the paper's shield vs. alternative safety mechanisms.

Table 1's "Overhead" column reports the relative cost of running the shielded
network instead of the bare network.  These micro-benchmarks break that down to
per-decision latency and put it next to the alternatives discussed in §5/§6:

* the bare neural policy,
* the paper's shield (invariant membership check + one-step model prediction),
* a receding-horizon MPC controller (optimisation per decision), and
* the finite-abstraction shield (grid lookup per decision, after an expensive
  offline construction whose safe set collapses on this benchmark).
"""

import numpy as np
import pytest

from repro.baselines import (
    FiniteAbstractionConfig,
    FiniteAbstractionShield,
    MPCConfig,
    MPCController,
)
from repro.core import Shield
from repro.envs import make_environment
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl import train_oracle


@pytest.fixture(scope="module")
def pendulum():
    return make_environment("pendulum")


@pytest.fixture(scope="module")
def oracle(pendulum):
    return train_oracle(pendulum, hidden_sizes=(48, 32), seed=0).policy


@pytest.fixture(scope="module")
def shield(pendulum, oracle):
    program = AffineProgram(gain=[[-12.05, -5.87]], names=pendulum.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.diag([1.0, 0.5])) - 0.2,
        names=pendulum.state_names,
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=pendulum.state_names)
    return Shield(
        env=pendulum,
        neural_policy=oracle,
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


_STATES = [np.array([0.1, 0.0]), np.array([0.2, -0.1]), np.array([0.05, 0.15])]


def test_bare_network_decision_latency(benchmark, oracle):
    benchmark(lambda: [oracle(state) for state in _STATES])


def test_shielded_decision_latency(benchmark, shield):
    benchmark(lambda: [shield(state) for state in _STATES])


def test_programmatic_decision_latency(benchmark, shield):
    program = shield.program
    benchmark(lambda: [program.act(state) for state in _STATES])


def test_mpc_decision_latency(benchmark, pendulum):
    controller = MPCController(pendulum, MPCConfig(horizon=8, max_optimizer_iterations=15))
    benchmark.pedantic(
        lambda: [controller.act(state) for state in _STATES], rounds=3, iterations=1
    )


def test_finite_abstraction_construction_and_latency(benchmark, pendulum, oracle):
    """Offline construction dominates; the per-decision lookup itself is cheap."""

    def build_and_query():
        abstraction = FiniteAbstractionShield(
            pendulum, FiniteAbstractionConfig(cells_per_dim=9, actions_per_dim=5)
        )
        policy = abstraction.shield_policy(oracle)
        for state in _STATES:
            policy(state)
        return abstraction

    abstraction = benchmark.pedantic(build_and_query, rounds=1, iterations=1)
    # The §6 point: at this (already coarse) resolution the certified safe set is
    # essentially empty for the continuous pendulum.
    assert abstraction.safe_cell_fraction < 0.05


def test_shield_overhead_relative_to_bare_network(benchmark, pendulum, oracle, shield):
    """End-to-end episode cost ratio, the quantity reported in Table 1."""
    import time

    def run():
        rng = np.random.default_rng(0)
        start = time.perf_counter()
        pendulum.simulate(oracle, steps=500, rng=rng, initial_state=np.array([0.15, 0.0]))
        bare = time.perf_counter() - start
        start = time.perf_counter()
        pendulum.simulate(shield, steps=500, rng=rng, initial_state=np.array([0.15, 0.0]))
        shielded = time.perf_counter() - start
        return (shielded - bare) / bare

    overhead = benchmark.pedantic(run, rounds=1, iterations=1)
    # The overhead must stay modest (the paper reports a few percent on its
    # testbed; the exact number depends on the host and the oracle size).
    assert overhead < 2.0


def test_batched_shielded_campaign_throughput(benchmark, pendulum, shield):
    """Whole-campaign cost on the batched rollout engine (100 x 250 shielded)."""
    from repro.runtime import EvaluationProtocol, evaluate_policy

    protocol = EvaluationProtocol(episodes=100, steps=250, seed=0)

    def run():
        shield.reset_statistics()
        return evaluate_policy(pendulum, shield, protocol, shield=shield)

    metrics = benchmark.pedantic(run, rounds=3, iterations=1)
    assert metrics.num_episodes == 100
    assert metrics.total_decisions == 100 * 250
