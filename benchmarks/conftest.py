"""Shared fixtures for the benchmark harness.

Every benchmark runs the corresponding experiment module at the ``smoke`` scale
(seconds per row) so ``pytest benchmarks/ --benchmark-only`` finishes in
minutes.  Reproducing the paper's full protocol is a matter of switching the
scale, e.g. ``python -m repro.experiments.table1 --scale paper``.
"""

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def smoke_scale() -> ExperimentScale:
    return ExperimentScale.smoke()


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
