"""Fault injection, per-shard recovery, crash-safe journals, and chaos scenarios.

The recovery contract under test: a campaign that survives injected worker
crashes, hangs, or transient IO errors is *bit-identical* to the fault-free
run on every counter and statistic, only the failed shard/slot is re-executed
(asserted via the per-shard execution counters), the recovery is recorded in a
structured :class:`~repro.faults.FaultLog`, and a SIGKILLed sweep resumed
from its journal renders a byte-identical report.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cli import build_parser, main as cli_main
from repro.core import Shield
from repro.envs import make_environment
from repro.faults import (
    CRASH_EXIT_CODE,
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    RowJournal,
    ShardManifest,
    activate,
    active_plan,
    deactivate,
    fault_plan,
    fault_site,
    run_scenario,
)
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.networks import MLP
from repro.rl.policies import NeuralPolicy
from repro.shard import ShardPool, run_sharded_campaign

CAMPAIGN_FIELDS = ("total_rewards", "unsafe_counts", "interventions", "steady_at")


def _make_shield(env, seed=0):
    rng = np.random.default_rng(seed)
    d, m = env.state_dim, env.action_dim
    scale = env.action_high if env.action_high is not None else np.ones(m)
    network = MLP(d, (24, 16), m, output_scale=scale, seed=seed)
    program = AffineProgram(gain=rng.normal(scale=0.2, size=(m, d)), names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(d)) - 0.5, names=env.state_names
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=env.state_names)
    return Shield(
        env=env,
        neural_policy=NeuralPolicy(network),
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


def _campaign(workers=2, shards=4, retry=None, checkpoint=None, resume=False):
    env = make_environment("satellite")
    shield = _make_shield(env)
    return run_sharded_campaign(
        env,
        shield=shield,
        episodes=8,
        steps=25,
        seed=7,
        workers=workers,
        shards=shards,
        retry=retry,
        checkpoint=checkpoint,
        resume=resume,
    )


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    deactivate()
    yield
    deactivate()


# -------------------------------------------------------------------- the plan
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="nowhere", kind="crash")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="shard.worker", kind="gremlin")

    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=[
                FaultSpec(site="shard.worker", kind="crash", index=2, attempt=None),
                FaultSpec(site="store.put", kind="partial-write"),
            ],
            seed=11,
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.seed == plan.seed
        assert restored.specs == plan.specs

    def test_random_plans_are_seed_deterministic(self):
        assert FaultPlan.random(5).to_json() == FaultPlan.random(5).to_json()
        assert FaultPlan.random(5).to_json() != FaultPlan.random(6).to_json()

    def test_activation_exports_env_var_and_lazy_adoption(self):
        plan = FaultPlan(specs=[FaultSpec(site="shard.worker", kind="oserror")])
        activate(plan)
        assert ENV_VAR in os.environ
        # A "fresh process" (module state cleared) adopts the env plan lazily.
        import repro.faults.plan as plan_module

        plan_module._ACTIVE = None
        adopted = active_plan()
        assert adopted is not None
        assert adopted.specs == plan.specs
        assert adopted.activated_pid == os.getpid()
        deactivate()
        assert ENV_VAR not in os.environ
        assert active_plan() is None

    def test_fault_site_without_plan_is_noop(self):
        assert fault_site("shard.worker", index=0) is None

    def test_inline_lane_never_fires_and_keeps_spec_armed(self):
        with fault_plan(FaultPlan(specs=[FaultSpec(site="shard.worker", kind="oserror")])):
            assert fault_site("shard.worker", index=0, inline=True) is None
            with pytest.raises(OSError, match="injected transient OSError"):
                fault_site("shard.worker", index=0)

    def test_crash_never_fires_in_activating_process(self):
        with fault_plan(FaultPlan(specs=[FaultSpec(site="shard.worker", kind="crash")])):
            # Would os._exit(CRASH_EXIT_CODE) in a worker; here it must not.
            assert fault_site("shard.worker", index=0) is None
        assert CRASH_EXIT_CODE == 23

    def test_count_and_attempt_matching(self):
        plan = FaultPlan(
            specs=[FaultSpec(site="shard.worker", kind="oserror", index=1, attempt=0, count=2)]
        )
        with fault_plan(plan):
            assert fault_site("shard.worker", index=0) is None  # wrong index
            assert fault_site("shard.worker", index=1, attempt=1) is None  # wrong attempt
            with pytest.raises(OSError):
                fault_site("shard.worker", index=1, attempt=0)
            with pytest.raises(OSError):
                fault_site("shard.worker", index=1, attempt=0)
            assert fault_site("shard.worker", index=1, attempt=0) is None  # count spent

    def test_data_kinds_are_returned_not_raised(self):
        with fault_plan(FaultPlan(specs=[FaultSpec(site="store.put", kind="partial-write")])):
            spec = fault_site("store.put")
            assert spec is not None and spec.kind == "partial-write"


class TestRetryPolicy:
    def test_backoff_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_seconds=0.1, jitter_fraction=0.2, seed=3)
        values = [policy.backoff_for("shard.worker", 2, attempt) for attempt in (1, 2, 3)]
        assert values == [policy.backoff_for("shard.worker", 2, a) for a in (1, 2, 3)]
        for attempt, value in enumerate(values, start=1):
            base = 0.1 * 2.0 ** (attempt - 1)
            assert base * 0.8 <= value <= base * 1.2
        # Different coordinates jitter differently.
        assert policy.backoff_for("shard.worker", 0, 1) != policy.backoff_for(
            "shard.worker", 1, 1
        )

    def test_wave_timeout_scales_with_queue_depth(self):
        policy = RetryPolicy(deadline_seconds=2.0)
        assert policy.wave_timeout(4, 2) == 4.0
        assert policy.wave_timeout(1, 2) == 2.0
        assert RetryPolicy().wave_timeout(4, 2) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)


# --------------------------------------------------------- per-shard recovery
class TestShardRecovery:
    def test_crash_recovery_is_bit_identical_and_retries_only_failed_shards(self):
        baseline = _campaign()
        plan = FaultPlan(
            specs=[FaultSpec(site="shard.worker", kind="crash", index=2, attempt=0)]
        )
        with fault_plan(plan), pytest.warns(RuntimeWarning, match="shard pool recovery"):
            recovered = _campaign()
        for field in CAMPAIGN_FIELDS:
            np.testing.assert_array_equal(
                getattr(baseline, field), getattr(recovered, field), err_msg=field
            )
        executions = recovered.stats["shard_executions"]
        assert executions[2] == 2  # the crashed shard ran twice
        # No whole-run fallback: at most the crash's in-flight casualties
        # re-ran, never all shards from scratch.
        assert sum(executions) < 2 * len(executions)
        assert recovered.stats["faults"]
        assert all(e["site"] == "shard.worker" for e in recovered.stats["faults"])
        assert baseline.stats["faults"] == []

    def test_hang_recovery_via_watchdog_deadline(self):
        retry = RetryPolicy(max_attempts=3, backoff_seconds=0.01, deadline_seconds=0.4)
        baseline = _campaign(retry=retry)
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    site="shard.worker", kind="hang", index=1, attempt=0, delay_seconds=2.0
                )
            ]
        )
        with fault_plan(plan), pytest.warns(RuntimeWarning, match="watchdog deadline"):
            recovered = _campaign(retry=retry)
        for field in CAMPAIGN_FIELDS:
            np.testing.assert_array_equal(
                getattr(baseline, field), getattr(recovered, field), err_msg=field
            )
        assert recovered.stats["shard_executions"][1] >= 2
        outcomes = {e["outcome"] for e in recovered.stats["faults"]}
        assert "retry" in outcomes

    def test_transient_oserror_recovery(self):
        baseline = _campaign()
        plan = FaultPlan(
            specs=[FaultSpec(site="shard.worker", kind="oserror", index=0, attempt=0)]
        )
        with fault_plan(plan), pytest.warns(RuntimeWarning, match="injected transient"):
            recovered = _campaign()
        for field in CAMPAIGN_FIELDS:
            np.testing.assert_array_equal(
                getattr(baseline, field), getattr(recovered, field), err_msg=field
            )
        assert recovered.stats["shard_executions"][0] == 2

    def test_exhausted_retries_recover_on_inline_lane(self):
        retry = RetryPolicy(max_attempts=2, backoff_seconds=0.01)
        baseline = _campaign(retry=retry)
        # attempt=None: the crash re-fires on every fork attempt, so the shard
        # must land on the guaranteed inline lane.
        plan = FaultPlan(
            specs=[FaultSpec(site="shard.worker", kind="crash", index=1, attempt=None)]
        )
        with fault_plan(plan), pytest.warns(RuntimeWarning):
            recovered = _campaign(retry=retry)
        for field in CAMPAIGN_FIELDS:
            np.testing.assert_array_equal(
                getattr(baseline, field), getattr(recovered, field), err_msg=field
            )
        assert recovered.stats["shard_origins"][1] == "inline"
        assert any(
            e["outcome"] == "recovered-inline" for e in recovered.stats["faults"]
        )

    def test_monitored_fleet_crash_recovery_covers_disturbance_estimate(self):
        from repro.envs import make_disturbance
        from repro.shard import monitor_fleet_sharded

        env = make_environment("satellite")

        def run():
            disturbance = make_disturbance(
                "uniform", env.state_dim, magnitude=0.02, rng=np.random.default_rng(11)
            )
            return monitor_fleet_sharded(
                _make_shield(env),
                episodes=6,
                steps=20,
                seed=3,
                disturbance=disturbance,
                workers=2,
                shards=3,
            )

        baseline = run()
        plan = FaultPlan(
            specs=[FaultSpec(site="shard.worker", kind="crash", index=1, attempt=0)]
        )
        with fault_plan(plan), pytest.warns(RuntimeWarning, match="shard pool recovery"):
            recovered = run()
        np.testing.assert_array_equal(baseline.interventions, recovered.interventions)
        np.testing.assert_array_equal(baseline.model_mismatches, recovered.model_mismatches)
        np.testing.assert_array_equal(baseline.unsafe_steps, recovered.unsafe_steps)
        np.testing.assert_array_equal(
            baseline.peak_barrier_values, recovered.peak_barrier_values
        )
        left, right = baseline.disturbance_estimate, recovered.disturbance_estimate
        assert left is not None and right is not None
        np.testing.assert_array_equal(left.mean, right.mean)
        np.testing.assert_array_equal(left.covariance, right.covariance)
        assert recovered.shard_stats["shard_executions"][1] >= 2

    def test_genuine_worker_exceptions_still_propagate(self):
        env = make_environment("satellite")
        with pytest.raises(ValueError):
            run_sharded_campaign(
                env,
                policy=lambda s: np.zeros(99),  # wrong action shape
                episodes=4,
                steps=10,
                seed=0,
                workers=2,
                shards=2,
            )

    def test_no_fork_platform_falls_back_inline(self, monkeypatch):
        baseline = _campaign(workers=1)
        monkeypatch.setattr(ShardPool, "fork_available", property(lambda self: False))
        fallback = _campaign()
        for field in CAMPAIGN_FIELDS:
            np.testing.assert_array_equal(
                getattr(baseline, field), getattr(fallback, field), err_msg=field
            )
        assert fallback.stats["mode"] != "fork-pool"

    def test_executor_creation_failure_recovers_inline(self, monkeypatch):
        baseline = _campaign(workers=1)
        monkeypatch.setattr(
            ShardPool, "_ensure_executor", lambda self: None
        )
        with pytest.warns(RuntimeWarning, match="could not start the fork pool"):
            fallback = _campaign()
        for field in CAMPAIGN_FIELDS:
            np.testing.assert_array_equal(
                getattr(baseline, field), getattr(fallback, field), err_msg=field
            )
        assert all(origin == "inline" for origin in fallback.stats["shard_origins"])
        assert all(
            e["outcome"] == "recovered-inline" for e in fallback.stats["faults"]
        )


# ------------------------------------------------------- parallel CEGIS slots
class TestCEGISRecovery:
    def _run(self, workers=2):
        from repro.baselines import make_lqr_policy
        from repro.core import (
            CEGISConfig,
            CEGISLoop,
            DistanceConfig,
            SynthesisConfig,
            VerificationConfig,
        )

        config = CEGISConfig(
            synthesis=SynthesisConfig(
                iterations=3,
                distance=DistanceConfig(num_trajectories=1, trajectory_length=30),
                seed=0,
            ),
            verification=VerificationConfig(backend="lyapunov"),
            max_counterexamples=4,
            seed=0,
            workers=workers,
        )
        env = make_environment("satellite")
        loop = CEGISLoop(env, make_lqr_policy(env), config=config)
        return loop.run()

    def test_crashed_slot_recovers_bit_identically(self):
        from repro.lang import program_fingerprint

        baseline = self._run()
        plan = FaultPlan(
            specs=[FaultSpec(site="cegis.worker", kind="crash", index=0, attempt=None)]
        )
        with fault_plan(plan), pytest.warns(RuntimeWarning, match="CEGIS recovery"):
            recovered = self._run()
        assert recovered.covered == baseline.covered
        assert program_fingerprint(recovered.program) == program_fingerprint(
            baseline.program
        )
        assert recovered.fault_log
        assert baseline.fault_log == []
        assert all(e["site"] == "cegis.worker" for e in recovered.fault_log)


# ------------------------------------------------------------------- journals
class TestJournals:
    def test_row_journal_round_trip_preserves_key_order(self, tmp_path):
        path = tmp_path / "rows.journal"
        journal = RowJournal(path, meta={"experiment": "t"})
        assert journal.begin(resume=True) == {}
        row = {"zulu": 1, "alpha": 2.5, "mid": "TO"}
        journal.record("r1", row)
        resumed = RowJournal(path, meta={"experiment": "t"}).begin(resume=True)
        assert resumed == {"r1": row}
        # Insertion order survives the round trip — resumed reports render
        # their columns identically to uninterrupted ones.
        assert list(resumed["r1"]) == ["zulu", "alpha", "mid"]

    def test_fingerprint_mismatch_starts_fresh(self, tmp_path):
        path = tmp_path / "rows.journal"
        journal = RowJournal(path, meta={"experiment": "a"})
        journal.begin(resume=False)
        journal.record("r1", {"x": 1})
        assert RowJournal(path, meta={"experiment": "a"}).begin(resume=True) == {
            "r1": {"x": 1}
        }
        # Same path, different work: the journal restarts instead of resuming.
        assert RowJournal(path, meta={"experiment": "b"}).begin(resume=True) == {}
        # No resume flag: truncates even when the fingerprint matches.
        journal.record("r1", {"x": 1})
        fresh = RowJournal(path, meta={"experiment": "b"})
        fresh.begin(resume=False)
        assert fresh.begin(resume=True) == {}

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "rows.journal"
        journal = RowJournal(path, meta={})
        journal.begin(resume=False)
        journal.record("r1", {"x": 1})
        journal.record("r2", {"x": 2})
        with open(path, "a") as handle:  # the SIGKILL signature
            handle.write('{"key": "r3", "ro')
        resumed = RowJournal(path, meta={}).begin(resume=True)
        assert set(resumed) == {"r1", "r2"}

    def test_float_values_round_trip_exactly(self, tmp_path):
        path = tmp_path / "rows.journal"
        journal = RowJournal(path, meta={})
        journal.begin(resume=False)
        values = {"a": 0.1 + 0.2, "b": 1e-17, "c": -0.0, "d": 3.37}
        journal.record("r", values)
        resumed = RowJournal(path, meta={}).begin(resume=True)["r"]
        for key, value in values.items():
            assert repr(resumed[key]) == repr(value)

    def test_shard_manifest_keys_by_index(self, tmp_path):
        path = tmp_path / "shards.manifest"
        manifest = ShardManifest(path, meta={"steps": 10})
        manifest.begin(resume=False)
        manifest.append({"index": 3, "views": {}})
        manifest.append({"index": 0, "views": {}})
        resumed = ShardManifest(path, meta={"steps": 10}).begin(resume=True)
        assert set(resumed) == {0, 3}


# -------------------------------------------------------- checkpoint + resume
class TestCampaignResume:
    def test_resume_restores_all_shards_without_execution(self, tmp_path):
        checkpoint = tmp_path / "campaign.manifest"
        first = _campaign(checkpoint=checkpoint)
        resumed = _campaign(checkpoint=checkpoint, resume=True)
        for field in CAMPAIGN_FIELDS:
            np.testing.assert_array_equal(
                getattr(first, field), getattr(resumed, field), err_msg=field
            )
        assert all(origin == "manifest" for origin in resumed.stats["shard_origins"])
        assert sum(resumed.stats["shard_executions"]) == 0

    def test_partial_manifest_resumes_only_missing_shards(self, tmp_path):
        checkpoint = tmp_path / "campaign.manifest"
        full = _campaign(checkpoint=checkpoint)
        # Drop the last two manifest lines — as if the run was SIGKILLed.
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text("\n".join(lines[:-2]) + "\n")
        resumed = _campaign(checkpoint=checkpoint, resume=True)
        for field in CAMPAIGN_FIELDS:
            np.testing.assert_array_equal(
                getattr(full, field), getattr(resumed, field), err_msg=field
            )
        assert sum(1 for o in resumed.stats["shard_origins"] if o == "manifest") == 2
        assert sum(resumed.stats["shard_executions"]) == 2

    def test_without_resume_flag_checkpoint_is_overwritten(self, tmp_path):
        checkpoint = tmp_path / "campaign.manifest"
        _campaign(checkpoint=checkpoint)
        fresh = _campaign(checkpoint=checkpoint)
        assert all(origin == "fork" for origin in fresh.stats["shard_origins"])

    def test_monitored_fleet_checkpoint_resume(self, tmp_path):
        from repro.shard import monitor_fleet_sharded

        env = make_environment("satellite")
        checkpoint = tmp_path / "monitor.manifest"

        def run(resume):
            return monitor_fleet_sharded(
                _make_shield(env),
                episodes=6,
                steps=20,
                seed=3,
                workers=2,
                shards=3,
                checkpoint=checkpoint,
                resume=resume,
            )

        first = run(False)
        resumed = run(True)
        assert sum(resumed.shard_stats["shard_executions"]) == 0
        np.testing.assert_array_equal(first.interventions, resumed.interventions)
        np.testing.assert_array_equal(first.final_states, resumed.final_states)
        left, right = first.disturbance_estimate, resumed.disturbance_estimate
        assert (left is None) == (right is None)
        if left is not None:
            np.testing.assert_array_equal(left.mean, right.mean)
            np.testing.assert_array_equal(left.covariance, right.covariance)


# -------------------------------------------------------------- sweep resume
class TestSweepResume:
    def test_table1_resumes_only_missing_rows(self, tmp_path, monkeypatch):
        from repro.experiments import table1

        calls = []

        def fake_row(name, scale=None, service=None):
            calls.append(name)
            return {"benchmark": name, "training_s": 1.25, "value": len(name)}

        monkeypatch.setattr(table1, "run_benchmark_row", fake_row)
        journal = tmp_path / "table1.journal"
        names = ["satellite", "dcmotor", "tape"]
        rows = table1.run_table1(names, journal=journal, timing=False)
        assert calls == names
        assert all(row["training_s"] == 0.0 for row in rows)  # timing zeroed

        # Simulate a kill after the first two rows.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + "\n")
        calls.clear()
        resumed = table1.run_table1(names, journal=journal, resume=True, timing=False)
        assert calls == ["tape"]
        assert resumed == rows

    def test_table2_markers_survive_timing_normalization(self):
        from repro.experiments.reporting import normalize_timing

        row = {"verification_s": "TO", "overhead_pct": "-", "campaign_s": 1.5, "n": 3}
        normalized = normalize_timing(row)
        assert normalized == {
            "verification_s": "TO",
            "overhead_pct": "-",
            "campaign_s": 0.0,
            "n": 3,
        }

    def test_journal_meta_fingerprints_scale_changes(self, tmp_path):
        from repro.experiments.reporting import ExperimentScale, open_row_journal

        journal = tmp_path / "sweep.journal"
        first, completed = open_row_journal(
            journal, False, "table1", ExperimentScale.smoke(), ["a", "b"]
        )
        first.record("a", {"x": 1})
        _, resumed = open_row_journal(
            journal, True, "table1", ExperimentScale.smoke(), ["a", "b"]
        )
        assert set(resumed) == {"a"}
        _, foreign = open_row_journal(
            journal, True, "table1", ExperimentScale.medium(), ["a", "b"]
        )
        assert foreign == {}


# ----------------------------------------------------------------- the store
class TestStoreDurability:
    def _artifact(self, seed=0):
        from repro.faults.scenarios import _tiny_artifact

        return _tiny_artifact(seed)

    def test_partial_write_leaves_committed_objects_intact(self, tmp_path):
        from repro.store import ShieldStore

        store = ShieldStore(tmp_path / "store")
        key = store.put(self._artifact(0))
        plan = FaultPlan(specs=[FaultSpec(site="store.put", kind="partial-write")])
        with fault_plan(plan), pytest.raises(OSError, match="injected partial write"):
            store.put(self._artifact(1))
        store.get(key)  # intact
        assert len(list((tmp_path / "store").glob("objects/*/*.tmp"))) == 1
        # Re-opening sweeps our own orphan; a later put succeeds.
        store = ShieldStore(tmp_path / "store")
        assert not list((tmp_path / "store").glob("objects/*/*.tmp"))
        store.get(store.put(self._artifact(1)))

    def test_foreign_live_writer_tmps_are_kept(self, tmp_path):
        from repro.store import ShieldStore
        from repro.store.store import _pid_alive

        store = ShieldStore(tmp_path / "store")
        store.put(self._artifact(0))
        subdir = next((tmp_path / "store" / "objects").iterdir())
        live_foreign = subdir / f"x.json.{1}.tmp"  # pid 1: alive, not ours
        dead_foreign = subdir / "y.json.999999999.tmp"
        legacy = subdir / "z.json.tmp"
        for path in (live_foreign, dead_foreign, legacy):
            path.write_text("partial")
        assert _pid_alive(1)
        ShieldStore(tmp_path / "store")
        assert live_foreign.exists()
        assert not dead_foreign.exists()
        assert not legacy.exists()

    def test_corrupt_read_raises_artifact_error_naming_path_and_key(self, tmp_path):
        from repro.lang import ArtifactError
        from repro.store import CorruptArtifactError, ShieldStore, StoreError

        store = ShieldStore(tmp_path / "store")
        key = store.put(self._artifact(0))
        plan = FaultPlan(specs=[FaultSpec(site="store.get", kind="corrupt-read")])
        with fault_plan(plan), pytest.raises(CorruptArtifactError) as excinfo:
            store.get(key)
        assert excinfo.value.key == key
        assert excinfo.value.path is not None
        assert "corrupt" in str(excinfo.value)
        assert isinstance(excinfo.value, StoreError)
        assert isinstance(excinfo.value, ArtifactError)
        store.get(key)  # transient: on-disk bytes were never touched

    def test_truncated_object_and_fsck_quarantine(self, tmp_path):
        from repro.store import CorruptArtifactError, ShieldStore

        store = ShieldStore(tmp_path / "store")
        good = store.put(self._artifact(0))
        bad = store.put(self._artifact(1))
        victim = store._path_for(bad)
        victim.write_text(victim.read_text()[:50])
        with pytest.raises(CorruptArtifactError):
            store.get(bad)
        ok_keys, corrupt = store.fsck()
        assert ok_keys == [good]
        assert [c["key"] for c in corrupt] == [bad]
        assert corrupt[0]["quarantined"] is None
        assert victim.exists()
        ok_keys, corrupt = store.fsck(delete_corrupt=True)
        assert not victim.exists()
        quarantined = tmp_path / "store" / "quarantine" / f"{bad}.json"
        assert quarantined.exists()
        assert store.put(self._artifact(1)) == bad  # re-put restores
        store.get(bad)


# --------------------------------------------------------------------- chaos
class TestChaos:
    def test_flaky_io_scenario(self, tmp_path):
        with pytest.warns(RuntimeWarning):
            result = run_scenario("flaky-io", seed=0, workdir=tmp_path)
        assert result["ok"], result["detail"]
        assert result["fault_events"]
        assert result["time_to_recover_seconds"] > 0

    def test_corrupt_store_scenario(self, tmp_path):
        result = run_scenario("corrupt-store", seed=0, workdir=tmp_path)
        assert result["ok"], result["detail"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            run_scenario("meteor-strike")


# ----------------------------------------------------------------------- CLI
class TestCLI:
    def test_chaos_list(self, capsys):
        assert cli_main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("crash-storm", "hang", "flaky-io", "corrupt-store", "kill-resume"):
            assert name in out

    def test_store_verify_fsck(self, tmp_path, capsys):
        from repro.faults.scenarios import _tiny_artifact
        from repro.store import ShieldStore

        root = tmp_path / "store"
        store = ShieldStore(root)
        key = store.put(_tiny_artifact(0))
        assert cli_main(["store", "--store", str(root), "verify"]) == 0
        victim = store._path_for(key)
        victim.write_text(victim.read_text()[:40])
        assert cli_main(["store", "--store", str(root), "verify"]) == 1
        assert cli_main(
            ["store", "--store", str(root), "verify", "--delete-corrupt"]
        ) == 1
        assert (root / "quarantine" / f"{key}.json").exists()
        assert cli_main(["store", "--store", str(root), "verify"]) == 0
        out = capsys.readouterr().out
        assert "quarantine" in out

    def test_experiment_parsers_accept_journal_flags(self):
        parser = build_parser()
        for sweep in ("table1", "table2", "table3", "robustness"):
            args = parser.parse_args(
                [sweep, "--journal", "j.journal", "--resume", "--no-timing"]
            )
            assert args.journal == "j.journal"
            assert args.resume and args.no_timing

    def test_run_parser_accepts_checkpoint_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "run",
                "satellite",
                "--checkpoint",
                "c.manifest",
                "--resume",
                "--max-attempts",
                "5",
                "--deadline",
                "1.5",
            ]
        )
        assert args.checkpoint == "c.manifest"
        assert args.resume and args.max_attempts == 5 and args.deadline == 1.5


# ---------------------------------------------------------------- fuzz family
class TestFaultsFuzzFamily:
    def test_registered_with_required_shape(self):
        from repro.fuzz import FAMILIES

        family = FAMILIES["faults"]
        assert family.weight >= 1

    def test_one_case_holds_and_payload_is_json_ready(self):
        from repro.fuzz import FAMILIES, case_rng

        family = FAMILIES["faults"]
        payload = family.generate(case_rng(0, "faults", 0))
        json.dumps(payload)  # corpus-persistable
        with pytest.warns(RuntimeWarning):
            assert family.check(payload) is None

    def test_shrink_candidates_stay_valid(self):
        from repro.fuzz import FAMILIES, case_rng

        family = FAMILIES["faults"]
        payload = family.generate(case_rng(0, "faults", 1))
        candidates = list(family.shrink_candidates(payload))
        assert candidates
        for candidate in candidates:
            assert candidate["episodes"] >= 1
            assert candidate["shards"] >= 2 or "shards" not in candidate
