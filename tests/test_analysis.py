"""Tests for the abstract-interpretation shield analyzer (repro.analysis).

Covers the interval evaluator (soundness on hand-checked programs), every
diagnostic code A001-A007 with a positive and a negative case, the static
CEGIS pre-filter (bit-identity of results with the filter on and off), the
store validation gate, and the ``repro lint`` CLI (exit codes, prefix
resolution, severity filtering).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    AnalysisConfig,
    AnalysisReport,
    DIAGNOSTIC_CODES,
    Diagnostic,
    analyze_artifact,
    analyze_invariant,
    analyze_program,
    clip_interval,
    expr_interval,
    invariant_interval,
    lint_store,
    program_output_intervals,
    statically_refuted,
)
from repro.baselines import make_lqr_policy
from repro.certificates.regions import Box
from repro.cli import main
from repro.core import CEGISConfig, CEGISLoop, SynthesisConfig
from repro.envs import make_environment
from repro.lang import (
    Add,
    AffineProgram,
    Const,
    ExprProgram,
    GuardedProgram,
    Invariant,
    InvariantUnion,
    Mul,
    ShieldArtifact,
    Var,
    program_to_dict,
)
from repro.polynomials import Interval, Polynomial
from repro.store import ShieldStore, StoreError, SynthesisService


UNIT_BOX = Box(low=(-1.0, -1.0), high=(1.0, 1.0))


def ball_guard(radius_sq: float, center: float = 0.0, dim: int = 2) -> Invariant:
    """Invariant satisfied on the ball ``|x - center|^2 <= radius_sq``."""
    barrier = Polynomial.quadratic_form(np.eye(dim), center=[center] * dim)
    return Invariant(barrier=barrier - radius_sq)


# --------------------------------------------------------------- diagnostics
class TestDiagnostics:
    def test_codes_are_documented(self):
        assert set(DIAGNOSTIC_CODES) == {f"A00{i}" for i in range(1, 8)}

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(severity="fatal", code="A001", location="x", message="m")

    def test_invalid_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(severity="error", code="A999", location="x", message="m")

    def test_report_accessors_and_serialization(self):
        report = AnalysisReport(subject="s")
        assert report.ok and report.clean
        report.add("warning", "A006", "outputs[0]", "spread", spread=1e13)
        report.add("error", "A001", "program", "out of bounds", witness=(0.0, 1.0))
        assert not report.ok and not report.clean
        assert report.codes() == ["A001", "A006"]
        assert len(report.select(code="A001")) == 1
        assert len(report.select(severity="warning")) == 1
        payload = report.to_dict()
        assert payload["subject"] == "s"
        assert payload["diagnostics"][0]["code"] in ("A001", "A006")
        assert "A001" in report.pretty()
        assert report.summary()["errors"] == 1 and report.summary()["warnings"] == 1


# ------------------------------------------------------------- interval eval
class TestIntervalEval:
    def test_expr_interval_brackets_concrete_values(self):
        expr = Add((Mul((Var(0), Var(1))), Const(0.5), Var(0)))
        bound = expr_interval(expr, UNIT_BOX)
        rng = np.random.default_rng(0)
        for state in UNIT_BOX.sample(rng, 50):
            value = expr.evaluate(state)
            assert bound.lo - 1e-12 <= value <= bound.hi + 1e-12

    def test_expr_interval_rejects_nonfinite_constant(self):
        with pytest.raises(ValueError):
            expr_interval(Const(float("nan")), Box(low=(0.0,), high=(1.0,)))

    def test_expr_interval_rejects_out_of_range_variable(self):
        with pytest.raises(ValueError):
            expr_interval(Var(3), Box(low=(0.0,), high=(1.0,)))

    def test_clip_interval(self):
        assert clip_interval(Interval(-3.0, 4.0), -1.0, 2.0) == Interval(-1.0, 2.0)
        assert clip_interval(Interval(5.0, 9.0), -1.0, 2.0) == Interval(2.0, 2.0)

    def test_invariant_interval_verdicts(self):
        near = ball_guard(0.25)
        far_box = Box(low=(3.0, 3.0), high=(4.0, 4.0))
        assert invariant_interval(near, far_box).lo > 0.0  # provably dead
        tight_box = Box(low=(-0.1, -0.1), high=(0.1, 0.1))
        assert invariant_interval(near, tight_box).hi <= 0.0  # always holds

    def test_affine_output_intervals_respect_clip(self):
        program = AffineProgram(
            gain=[[2.0, 0.0]], bias=[0.0], action_low=[-1.0], action_high=[1.0]
        )
        (bound,) = program_output_intervals(program, UNIT_BOX)
        assert bound == Interval(-1.0, 1.0)
        unclipped = AffineProgram(gain=[[2.0, 0.0]], bias=[0.5])
        (bound,) = program_output_intervals(unclipped, UNIT_BOX)
        assert bound.lo == pytest.approx(-1.5) and bound.hi == pytest.approx(2.5)

    def test_guarded_output_intervals_hull_all_pieces(self):
        program = GuardedProgram(
            branches=[(ball_guard(1.0), AffineProgram(gain=[[1.0, 0.0]], bias=[5.0]))],
            fallback=AffineProgram(gain=[[0.0, 0.0]], bias=[-5.0]),
        )
        (bound,) = program_output_intervals(program, UNIT_BOX)
        assert bound.lo <= -5.0 and bound.hi >= 5.0

    def test_program_outputs_bracket_concrete_actions(self):
        program = ExprProgram(
            exprs=(Add((Mul((Var(0), Var(0))), Mul((Const(-2.0), Var(1))))),),
            state_dim=2,
        )
        bounds = program_output_intervals(program, UNIT_BOX)
        rng = np.random.default_rng(1)
        for state in UNIT_BOX.sample(rng, 50):
            action = program.act(state)
            for coord, iv in enumerate(bounds):
                assert iv.lo - 1e-12 <= float(action[coord]) <= iv.hi + 1e-12


# ----------------------------------------------------------- diagnostic codes
class TestAnalyzeProgram:
    def setup_method(self):
        self.env = make_environment("satellite")

    def test_clean_lqr_program(self):
        program = AffineProgram(gain=make_lqr_policy(self.env).gain)
        report = analyze_program(program, env=self.env)
        assert report.clean
        assert report.environment_fingerprint

    def test_a001_action_bound_violation(self):
        program = AffineProgram(gain=[[0.0, 0.0]], bias=[100.0])  # bounds are +-10
        report = analyze_program(program, env=self.env)
        assert report.codes() == ["A001"]
        assert not report.ok

    def test_a001_skips_dead_branches(self):
        dead_guard = ball_guard(0.01, center=50.0)  # nowhere near the domain
        program = GuardedProgram(
            branches=[(dead_guard, AffineProgram(gain=[[0.0, 0.0]], bias=[100.0]))],
            fallback=AffineProgram(gain=[[0.0, 0.0]], bias=[0.0]),
        )
        report = analyze_program(program, env=self.env)
        assert "A001" not in report.codes()  # the violating piece is provably dead
        assert "A002" in report.codes()

    def test_a002_dead_branch(self):
        program = GuardedProgram(
            branches=[(ball_guard(0.01, center=50.0), AffineProgram(gain=[[0.0, 0.0]]))],
            fallback=AffineProgram(gain=[[0.0, 0.0]]),
        )
        report = analyze_program(program, env=self.env)
        dead = report.select(code="A002")
        assert len(dead) == 1 and dead[0].severity == "warning"
        assert dead[0].data["branch"] == 0

    def test_a002_shadowed_branch_and_a003_unreachable_fallback(self):
        always = ball_guard(1e6)  # whole domain satisfies it
        program = GuardedProgram(
            branches=[
                (always, AffineProgram(gain=[[0.0, 0.0]])),
                (ball_guard(1.0), AffineProgram(gain=[[0.0, 0.0]])),
            ],
            fallback=AffineProgram(gain=[[0.0, 0.0]]),
        )
        report = analyze_program(program, env=self.env)
        shadowed = [d for d in report.select(code="A002") if "shadowed_by" in d.data]
        assert shadowed and shadowed[0].data["shadowed_by"] == 0
        assert report.select(code="A003")

    def test_a004_all_guards_provably_dead(self):
        program = GuardedProgram(
            branches=[(ball_guard(0.01, center=50.0), AffineProgram(gain=[[0.0, 0.0]]))],
            fallback=None,
            strict=True,
        )
        report = analyze_program(program, env=self.env)
        gaps = report.select(code="A004")
        assert gaps and gaps[0].severity == "error"

    def test_a004_sampled_coverage_witness(self):
        # Satisfiable over a corner of the init box but not all of it: interval
        # analysis cannot prove death, sampling finds an uncovered state.
        program = GuardedProgram(
            branches=[(ball_guard(0.05, center=0.45), AffineProgram(gain=[[0.0, 0.0]]))],
            fallback=None,
            strict=True,
        )
        report = analyze_program(program, env=self.env)
        gaps = report.select(code="A004")
        assert gaps and gaps[0].witness is not None
        assert program.branch_index(gaps[0].witness) < 0

    def test_a004_not_reported_with_fallback(self):
        program = GuardedProgram(
            branches=[(ball_guard(0.05, center=0.45), AffineProgram(gain=[[0.0, 0.0]]))],
            fallback=AffineProgram(gain=[[0.0, 0.0]]),
        )
        report = analyze_program(program, env=self.env)
        assert "A004" not in report.codes()

    def test_a005_dimension_mismatch(self):
        program = AffineProgram(gain=[[1.0, 2.0, 3.0]])
        report = analyze_program(program, env=self.env)
        assert report.select(code="A005")

    def test_a005_expression_variable_out_of_range(self):
        program = ExprProgram(exprs=(Var(5),), state_dim=2)
        report = analyze_program(program, env=self.env)
        assert report.select(code="A005")

    def test_a006_nonfinite_coefficient_is_error(self):
        program = AffineProgram(gain=[[float("nan"), 0.0]])
        report = analyze_program(program, env=self.env)
        findings = report.select(code="A006")
        assert findings and findings[0].severity == "error"

    def test_a006_condition_spread_is_warning(self):
        program = AffineProgram(gain=[[1e-14, 0.1]])
        report = analyze_program(program, env=self.env)
        findings = report.select(code="A006")
        assert findings and findings[0].severity == "warning"
        assert report.ok  # warnings never make the report fail

    def test_a007_lowering_error_bound(self):
        config = AnalysisConfig(float_error_tolerance=0.0)
        program = AffineProgram(gain=[[1.0, 1.0]], bias=[0.5])
        report = analyze_program(program, env=self.env, config=config)
        findings = report.select(code="A007")
        assert findings and findings[0].severity == "warning"

    def test_analyze_invariant_codes(self):
        good = ball_guard(1.0)
        assert analyze_invariant(good, state_dim=2).clean
        assert analyze_invariant(good, state_dim=3).select(code="A005")
        bad = Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - float("inf"))
        assert analyze_invariant(bad, state_dim=2).select(code="A006")


# ------------------------------------------------------------------ refutation
class TestStaticRefutation:
    def setup_method(self):
        self.env = make_environment("satellite")
        self.lqr = make_lqr_policy(self.env)

    def test_destabilizing_gain_is_refuted(self):
        bad = AffineProgram(gain=5.0 * np.abs(self.lqr.gain))
        region = Box(low=(0.3375, 0.3375), high=(0.4625, 0.4625))
        reason = statically_refuted(self.env, bad, region, steps=48)
        assert reason is not None and "escapes safe box" in reason

    def test_stable_gain_is_not_refuted(self):
        program = AffineProgram(gain=self.lqr.gain)
        region = Box(low=(-0.5, -0.5), high=(0.5, 0.5))
        assert statically_refuted(self.env, program, region, steps=48) is None

    def test_region_outside_safe_box_gives_no_verdict(self):
        bad = AffineProgram(gain=5.0 * np.abs(self.lqr.gain))
        region = Box(low=(1.4, 1.4), high=(1.9, 1.9))  # straddles the safe box
        assert statically_refuted(self.env, bad, region, steps=48) is None

    def test_dimension_mismatch_gives_no_verdict(self):
        bad = AffineProgram(gain=5.0 * np.abs(self.lqr.gain))
        region = Box(low=(0.3, 0.3, 0.3), high=(0.4, 0.4, 0.4))
        assert statically_refuted(self.env, bad, region, steps=48) is None


# --------------------------------------------------------- CEGIS pre-filter
def _branch_payload(result):
    """Bit-comparable view of every verified branch (program + invariant)."""
    return [
        {
            "program": program_to_dict(branch.program),
            "terms": sorted(
                (list(m.exponents), c)
                for m, c in branch.invariant.barrier.terms.items()
            ),
            "margin": branch.invariant.margin,
        }
        for branch in result.branches
    ]


class TestCEGISPreFilter:
    """The pre-filter must change counters, never results (bit-identity)."""

    def _run(self, oracle, prefilter: bool, **overrides):
        env = make_environment("satellite")
        config = CEGISConfig(
            seed=8,
            synthesis=SynthesisConfig(iterations=5, warm_start_samples=200),
            replay_prewarm_samples=0,
            static_prefilter=prefilter,
            **overrides,
        )
        return CEGISLoop(env, oracle, config=config).run()

    def test_destabilizing_oracle_prunes_without_changing_result(self):
        env = make_environment("satellite")
        bad_gain = 5.0 * np.abs(make_lqr_policy(env).gain)

        def oracle(state):
            return bad_gain @ np.asarray(state, dtype=float)

        overrides = dict(
            max_counterexamples=1,
            max_shrink_iterations=1,
            initial_radius_fraction=0.0625,
        )
        on = self._run(oracle, prefilter=True, **overrides)
        off = self._run(oracle, prefilter=False, **overrides)
        assert on.statically_pruned > 0
        assert off.statically_pruned == 0
        # Everything except the counter is bit-identical.
        assert on.covered == off.covered
        assert on.failure_reason == off.failure_reason
        if on.uncovered_witness is None or off.uncovered_witness is None:
            assert on.uncovered_witness is None and off.uncovered_witness is None
        else:
            assert np.array_equal(on.uncovered_witness, off.uncovered_witness)
        assert on.counterexamples_used == off.counterexamples_used
        assert _branch_payload(on) == _branch_payload(off)

    def test_lqr_oracle_identical_shields_with_filter_on(self):
        env = make_environment("satellite")
        oracle = make_lqr_policy(env)
        on = self._run(oracle, prefilter=True)
        off = self._run(oracle, prefilter=False)
        assert on.covered and off.covered
        assert on.statically_pruned == 0 and off.statically_pruned == 0
        assert program_to_dict(on.program) == program_to_dict(off.program)
        assert _branch_payload(on) == _branch_payload(off)


# ------------------------------------------------------------------ the gate
def _artifact(program, invariant, environment=""):
    return ShieldArtifact(
        program=GuardedProgram(branches=[(invariant, program)]),
        invariant=InvariantUnion([invariant]),
        environment=environment,
    )


class TestStoreGate:
    def test_put_rejects_error_findings(self, tmp_path):
        store = ShieldStore(tmp_path)
        artifact = _artifact(
            AffineProgram(gain=[[0.0, 0.0]], bias=[100.0]),
            ball_guard(1.0),
            environment="satellite",
        )
        with pytest.raises(StoreError, match="static analysis"):
            store.put(artifact)
        assert len(store) == 0

    def test_put_validate_false_bypasses_the_gate(self, tmp_path):
        store = ShieldStore(tmp_path)
        artifact = _artifact(
            AffineProgram(gain=[[0.0, 0.0]], bias=[100.0]),
            ball_guard(1.0),
            environment="satellite",
        )
        key = store.put(artifact, validate=False)
        assert store.get(key).environment == "satellite"

    def test_put_accepts_clean_and_warning_artifacts(self, tmp_path):
        store = ShieldStore(tmp_path)
        clean = _artifact(
            AffineProgram(gain=[[-0.1, -0.1]]), ball_guard(1.0), environment="satellite"
        )
        warn = _artifact(
            AffineProgram(gain=[[1e-14, 0.1]]), ball_guard(1.0), environment="satellite"
        )
        assert store.put(clean)
        assert store.put(warn)  # warnings never reject

    def test_service_records_pruned_counter_and_omits_empty_lint(self, tmp_path):
        env = make_environment("satellite")
        service = SynthesisService(store=ShieldStore(tmp_path))
        config = CEGISConfig(
            seed=8,
            synthesis=SynthesisConfig(iterations=5, warm_start_samples=200),
            replay_prewarm_samples=0,
        )
        result = service.synthesize(
            env, make_lqr_policy(env), config=config, environment="satellite"
        )
        assert result.artifact.metadata["statically_pruned"] == 0
        assert "lint_warnings" not in result.artifact.metadata


# -------------------------------------------------------------------- the CLI
CORPUS_STORE = str(Path(__file__).parent / "data" / "counterexamples" / "store")


@pytest.fixture()
def lint_stores(tmp_path):
    """(clean_store, dirty_store): one clean shield, one with an A001 error."""
    clean = ShieldStore(tmp_path / "clean")
    clean_key = clean.put(
        _artifact(AffineProgram(gain=[[-0.1, -0.1]]), ball_guard(1.0), "satellite")
    )
    dirty = ShieldStore(tmp_path / "dirty")
    dirty.put(
        _artifact(AffineProgram(gain=[[0.0, 0.0]], bias=[100.0]), ball_guard(1.0),
                  "satellite"),
        validate=False,
    )
    dirty.put(
        _artifact(AffineProgram(gain=[[1e-14, 0.1]]), ball_guard(1.0), "satellite")
    )
    return clean, clean_key, dirty


class TestLintCLI:
    def test_committed_corpus_store_is_clean(self, capsys):
        assert main(["lint", "--store", CORPUS_STORE, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "0 error(s), 0 warning(s)" in out

    def test_clean_store_exits_zero(self, lint_stores, capsys):
        clean, _key, _dirty = lint_stores
        assert main(["lint", "--store", str(clean.root)]) == 0

    def test_error_findings_exit_one(self, lint_stores, capsys):
        _clean, _key, dirty = lint_stores
        assert main(["lint", "--store", str(dirty.root)]) == 1
        out = capsys.readouterr().out
        assert "A001" in out

    def test_warnings_only_fail_under_strict(self, lint_stores, capsys):
        _clean, _key, dirty = lint_stores
        warn_key = next(
            entry.key for entry, report in lint_store(dirty) if not report.errors
        )
        assert main(["lint", "--store", str(dirty.root), warn_key[:12]]) == 0
        assert main(["lint", "--store", str(dirty.root), warn_key[:12], "--strict"]) == 1

    def test_key_prefix_resolution(self, lint_stores, capsys):
        clean, key, _dirty = lint_stores
        assert main(["lint", "--store", str(clean.root), key[:8]]) == 0
        out = capsys.readouterr().out
        assert key[:12] in out

    def test_unknown_prefix_exits_two(self, lint_stores, capsys):
        clean, _key, _dirty = lint_stores
        assert main(["lint", "--store", str(clean.root), "feedbee"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_env_filter(self, lint_stores, capsys):
        clean, _key, _dirty = lint_stores
        assert main(["lint", "--store", str(clean.root), "--env", "satellite"]) == 0
        assert "linted 1 artifact(s)" in capsys.readouterr().out
        assert main(["lint", "--store", str(clean.root), "--env", "tape"]) == 0
        assert "linted 0 artifact(s)" in capsys.readouterr().out

    def test_json_output(self, lint_stores, capsys):
        _clean, _key, dirty = lint_stores
        assert main(["lint", "--store", str(dirty.root), "--json"]) == 1
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 2
        codes = {d["code"] for report in reports for d in report["diagnostics"]}
        assert "A001" in codes

    def test_lint_store_api_matches_cli(self, lint_stores):
        _clean, _key, dirty = lint_stores
        results = lint_store(dirty)
        assert len(results) == 2
        assert sum(1 for _e, report in results if report.errors) == 1


# ----------------------------------------------------- artifact-level analysis
class TestAnalyzeArtifact:
    def test_registry_environment_is_resolved(self):
        artifact = _artifact(
            AffineProgram(gain=[[-0.1, -0.1]]), ball_guard(1.0), environment="satellite"
        )
        report = analyze_artifact(artifact)
        assert report.clean
        assert report.environment_fingerprint

    def test_unknown_environment_falls_back_to_structural_checks(self):
        artifact = _artifact(
            AffineProgram(gain=[[float("nan"), 0.0]]), ball_guard(1.0), environment=""
        )
        report = analyze_artifact(artifact)
        assert report.select(code="A006")

    def test_invariant_members_are_checked(self):
        bad_invariant = Invariant(
            barrier=Polynomial.quadratic_form(np.eye(3)) - 1.0
        )
        artifact = ShieldArtifact(
            program=GuardedProgram(
                branches=[(ball_guard(1.0), AffineProgram(gain=[[-0.1, -0.1]]))]
            ),
            invariant=InvariantUnion([bad_invariant]),
            environment="satellite",
        )
        report = analyze_artifact(artifact)
        findings = report.select(code="A005")
        assert findings and "invariant[0]" in findings[0].location
