"""Unit and property-based tests for the polynomial substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polynomials import (
    Interval,
    Monomial,
    Polynomial,
    basis_design_matrix,
    basis_size,
    even_monomial_basis,
    monomial_basis,
    monomial_range,
    polynomial_range,
    power_interval,
)

# --------------------------------------------------------------------- monomials


class TestMonomial:
    def test_constant_has_degree_zero(self):
        assert Monomial.constant(3).degree == 0
        assert Monomial.constant(3).is_constant()

    def test_variable_monomial(self):
        m = Monomial.variable(1, 3)
        assert m.exponents == (0, 1, 0)
        assert m.degree == 1

    def test_variable_out_of_range(self):
        with pytest.raises(IndexError):
            Monomial.variable(3, 3)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Monomial((1, -1))

    def test_multiplication_adds_exponents(self):
        a = Monomial((2, 0, 1))
        b = Monomial((1, 3, 0))
        assert (a * b).exponents == (3, 3, 1)

    def test_multiplication_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Monomial((1,)) * Monomial((1, 2))

    def test_power(self):
        assert (Monomial((1, 2)) ** 3).exponents == (3, 6)

    def test_evaluate(self):
        m = Monomial((2, 1))
        assert m.evaluate([3.0, 4.0]) == pytest.approx(36.0)

    def test_evaluate_batch_matches_scalar(self):
        m = Monomial((1, 3))
        points = np.array([[1.0, 2.0], [0.5, -1.0], [2.0, 0.0]])
        batch = m.evaluate_batch(points)
        for row, value in zip(points, batch):
            assert value == pytest.approx(m.evaluate(row))

    def test_differentiate(self):
        coeff, derived = Monomial((3, 1)).differentiate(0)
        assert coeff == 3.0
        assert derived.exponents == (2, 1)

    def test_differentiate_vanishing(self):
        coeff, derived = Monomial((0, 2)).differentiate(0)
        assert coeff == 0.0
        assert derived.is_constant()

    def test_format(self):
        assert Monomial((2, 1)).format(["x", "y"]) == "x^2*y"
        assert Monomial((0, 0)).format() == "1"

    def test_hashable_and_equal(self):
        assert Monomial((1, 2)) == Monomial((1, 2))
        assert len({Monomial((1, 2)), Monomial((1, 2)), Monomial((2, 1))}) == 2


# ------------------------------------------------------------------- polynomials


class TestPolynomial:
    def test_zero_is_zero(self):
        assert Polynomial.zero(2).is_zero()
        assert Polynomial.zero(2).evaluate([1.0, 2.0]) == 0.0

    def test_constant(self):
        p = Polynomial.constant(3.5, 2)
        assert p.evaluate([10.0, -4.0]) == pytest.approx(3.5)
        assert p.degree == 0

    def test_affine_evaluation(self):
        p = Polynomial.affine([2.0, -1.0], 0.5, 2)
        assert p.evaluate([1.0, 3.0]) == pytest.approx(2.0 - 3.0 + 0.5)

    def test_addition_and_subtraction(self):
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        p = x + y
        q = p - y
        assert q == x

    def test_multiplication_expands(self):
        x = Polynomial.variable(0, 1)
        p = (x + 1.0) * (x - 1.0)
        assert p.evaluate([3.0]) == pytest.approx(8.0)
        assert p.degree == 2

    def test_power(self):
        x = Polynomial.variable(0, 1)
        assert ((x + 1.0) ** 3).evaluate([1.0]) == pytest.approx(8.0)

    def test_power_negative_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.variable(0, 1) ** -1

    def test_scalar_multiplication(self):
        x = Polynomial.variable(0, 1)
        assert (3.0 * x).evaluate([2.0]) == pytest.approx(6.0)

    def test_mismatched_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.variable(0, 1) + Polynomial.variable(0, 2)

    def test_quadratic_form(self):
        p = Polynomial.quadratic_form(np.array([[2.0, 0.0], [0.0, 3.0]]))
        assert p.evaluate([1.0, 1.0]) == pytest.approx(5.0)

    def test_quadratic_form_with_center(self):
        p = Polynomial.quadratic_form(np.eye(2), center=[1.0, -1.0])
        assert p.evaluate([1.0, -1.0]) == pytest.approx(0.0)
        assert p.evaluate([2.0, -1.0]) == pytest.approx(1.0)

    def test_differentiate(self):
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        p = x**2 * y + 3.0 * x
        dp_dx = p.differentiate(0)
        assert dp_dx.evaluate([2.0, 5.0]) == pytest.approx(2 * 2 * 5 + 3)

    def test_gradient_length(self):
        p = Polynomial.affine([1.0, 2.0, 3.0], 0.0, 3)
        assert len(p.gradient()) == 3

    def test_substitute_composition(self):
        # p(x) = x^2, substitute x -> y + 1 over 1 variable
        p = Polynomial.variable(0, 1) ** 2
        sub = Polynomial.affine([1.0], 1.0, 1)
        composed = p.substitute([sub])
        assert composed.evaluate([2.0]) == pytest.approx(9.0)

    def test_compose_affine(self):
        p = Polynomial.variable(0, 2) + Polynomial.variable(1, 2)
        matrix = np.array([[2.0, 0.0], [0.0, 3.0]])
        composed = p.compose_affine(matrix, [1.0, -1.0])
        assert composed.evaluate([1.0, 1.0]) == pytest.approx(2 + 1 + 3 - 1)

    def test_evaluate_batch_matches_scalar(self):
        p = Polynomial.affine([1.0, -2.0], 3.0, 2) ** 2
        points = np.random.default_rng(0).normal(size=(10, 2))
        batch = p.evaluate_batch(points)
        for row, value in zip(points, batch):
            assert value == pytest.approx(p.evaluate(row))

    def test_coefficients_on_basis(self):
        basis = monomial_basis(2, 2)
        p = Polynomial.from_coefficients(np.arange(len(basis), dtype=float), basis, 2)
        recovered = p.coefficients_on(basis)
        np.testing.assert_allclose(recovered, np.arange(len(basis), dtype=float))

    def test_coefficients_outside_basis_rejected(self):
        basis = monomial_basis(2, 1)
        p = Polynomial.variable(0, 2) ** 2
        with pytest.raises(ValueError):
            p.coefficients_on(basis)

    def test_format_readable(self):
        p = Polynomial.affine([1.0, -2.0], 0.0, 2)
        text = p.format(["eta", "omega"])
        assert "eta" in text and "omega" in text

    def test_equality_up_to_tolerance(self):
        x = Polynomial.variable(0, 1)
        assert (x + 1.0) - 1.0 == x


# ------------------------------------------------------------------------- basis


class TestBasis:
    def test_basis_counts_match_formula(self):
        for num_vars in (1, 2, 3):
            for degree in (1, 2, 4):
                assert len(monomial_basis(num_vars, degree)) == basis_size(num_vars, degree)

    def test_basis_is_sorted_by_degree(self):
        basis = monomial_basis(2, 3)
        degrees = [m.degree for m in basis]
        assert degrees == sorted(degrees)

    def test_basis_has_no_duplicates(self):
        basis = monomial_basis(3, 3)
        assert len(basis) == len(set(basis))

    def test_min_degree_filter(self):
        basis = monomial_basis(2, 3, min_degree=2)
        assert all(m.degree >= 2 for m in basis)

    def test_even_basis(self):
        basis = even_monomial_basis(2, 4)
        assert all(m.degree % 2 == 0 for m in basis)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            monomial_basis(2, -1)
        with pytest.raises(ValueError):
            monomial_basis(2, 2, min_degree=3)

    def test_design_matrix_shape_and_values(self):
        basis = monomial_basis(2, 2)
        points = np.array([[1.0, 2.0], [0.0, 1.0]])
        matrix = basis_design_matrix(basis, points)
        assert matrix.shape == (2, len(basis))
        for j, monomial in enumerate(basis):
            assert matrix[0, j] == pytest.approx(monomial.evaluate(points[0]))


# --------------------------------------------------------------------- intervals


class TestInterval:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Interval(1.0, 0.0)

    def test_addition(self):
        assert (Interval(0, 1) + Interval(2, 3)).lo == 2
        assert (Interval(0, 1) + Interval(2, 3)).hi == 4

    def test_multiplication_sign_handling(self):
        r = Interval(-2, 3) * Interval(-1, 4)
        assert r.lo == -8 and r.hi == 12

    def test_negation_and_subtraction(self):
        r = Interval(1, 2) - Interval(0.5, 1.5)
        assert r.lo == pytest.approx(-0.5) and r.hi == pytest.approx(1.5)

    def test_even_power_straddling_zero(self):
        r = power_interval(Interval(-2, 1), 2)
        assert r.lo == 0.0 and r.hi == 4.0

    def test_odd_power_monotone(self):
        r = power_interval(Interval(-2, 1), 3)
        assert r.lo == -8.0 and r.hi == 1.0

    def test_monomial_range(self):
        m = Monomial((1, 2))
        r = monomial_range(m, [Interval(-1, 1), Interval(0, 2)])
        assert r.lo == -4.0 and r.hi == 4.0

    def test_polynomial_range_is_sound(self):
        p = Polynomial.affine([1.0, -1.0], 0.0, 2) ** 2
        box = [Interval(-1, 1), Interval(-1, 1)]
        bound = polynomial_range(p, box)
        rng = np.random.default_rng(1)
        samples = rng.uniform(-1, 1, size=(500, 2))
        values = p.evaluate_batch(samples)
        assert values.min() >= bound.lo - 1e-9
        assert values.max() <= bound.hi + 1e-9

    def test_hull_and_contains(self):
        assert Interval(0, 1).hull(Interval(2, 3)).hi == 3
        assert Interval(0, 1).contains(0.5)
        assert not Interval(0, 1).contains(1.5)

    def test_nan_endpoints_rejected(self):
        # Regression: nan > nan is False, so the ordering check alone let
        # Interval(nan, nan) construct and poison every downstream bound.
        nan = float("nan")
        for lo, hi in ((nan, nan), (nan, 1.0), (0.0, nan)):
            with pytest.raises(ValueError, match="nan"):
                Interval(lo, hi)

    def test_infinite_endpoints_allowed(self):
        inf = float("inf")
        assert Interval(-inf, inf).contains(1e300)
        assert Interval(0.0, inf).width == inf

    def test_indeterminate_arithmetic_widens_instead_of_nan(self):
        inf = float("inf")
        full = Interval(-inf, inf)
        # 0 * [-inf, inf] and inf - inf must yield sound enclosures, not nan.
        assert (Interval(0.0, 0.0) * full) == full
        assert (full + full).lo == -inf and (full + full).hi == inf
        assert (full - full) == full

    def test_polynomial_range_overflow_widens_instead_of_nan(self):
        big = Polynomial.affine([1e308, -1e308], 0.0, 2)
        p = big * big  # coefficients overflow per-monomial to opposite infinities
        bound = polynomial_range(p, [Interval(-2, 2), Interval(-2, 2)])
        assert not math.isnan(bound.lo) and not math.isnan(bound.hi)


# ---------------------------------------------------------------- property tests


coeff = st.floats(min_value=-5, max_value=5, allow_nan=False, allow_infinity=False)
point2 = st.tuples(
    st.floats(min_value=-3, max_value=3, allow_nan=False),
    st.floats(min_value=-3, max_value=3, allow_nan=False),
)


def _random_poly(coeffs):
    basis = monomial_basis(2, 2)
    return Polynomial.from_coefficients(list(coeffs)[: len(basis)], basis, 2)


@settings(max_examples=50, deadline=None)
@given(st.lists(coeff, min_size=6, max_size=6), st.lists(coeff, min_size=6, max_size=6), point2)
def test_addition_is_pointwise(c1, c2, point):
    p, q = _random_poly(c1), _random_poly(c2)
    assert (p + q).evaluate(point) == pytest.approx(
        p.evaluate(point) + q.evaluate(point), rel=1e-6, abs=1e-6
    )


@settings(max_examples=50, deadline=None)
@given(st.lists(coeff, min_size=6, max_size=6), st.lists(coeff, min_size=6, max_size=6), point2)
def test_multiplication_is_pointwise(c1, c2, point):
    p, q = _random_poly(c1), _random_poly(c2)
    assert (p * q).evaluate(point) == pytest.approx(
        p.evaluate(point) * q.evaluate(point), rel=1e-5, abs=1e-5
    )


@settings(max_examples=50, deadline=None)
@given(st.lists(coeff, min_size=6, max_size=6), point2)
def test_interval_extension_contains_point_values(c, point):
    p = _random_poly(c)
    box = [Interval(-3, 3), Interval(-3, 3)]
    bound = polynomial_range(p, box)
    value = p.evaluate(point)
    assert bound.lo - 1e-7 <= value <= bound.hi + 1e-7


@settings(max_examples=30, deadline=None)
@given(st.lists(coeff, min_size=6, max_size=6))
def test_subtraction_gives_zero(c):
    p = _random_poly(c)
    assert (p - p).is_zero(1e-9)
