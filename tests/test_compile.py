"""Differential tests: the compiled execution layer vs. the tree interpreter.

The compiled kernels (``repro.compile``) must be observationally equivalent to
the interpreted reference everywhere the toolchain routes through them:

* lowered polynomial blocks agree with ``Polynomial.evaluate_batch``,
* compiled programs agree with ``act``/``act_batch`` over random sketch
  instantiations (the ``test_serialize`` generators) and hand-built guarded
  programs exercising fallback / lenient / strict dispatch,
* compiled shielded campaigns reproduce the interpreted engine's intervention,
  unsafe, and steady counters *identically* — with matching rewards — across
  every registry benchmark, multiple seeds, and disturbed fleets,
* the fused monitored campaign reproduces every fleet-report counter,
* the scalar fast paths (``Expr.evaluate``, ``GuardedProgram.act``) agree with
  the pure interpreter kept under ``repro.compile.interpreted()``,
* the kernel cache compiles a stored shield once per process: the second
  campaign over the same artifact is a pure cache hit.
"""

import numpy as np
import pytest

from repro.compile import (
    CompiledDynamics,
    KernelCache,
    PolyBlock,
    clear_kernel_cache,
    compilation_enabled,
    compiled_program_for,
    interpreted,
    kernel_cache_stats,
    lower_program,
    set_compilation,
)
from repro.compile.lowering import LoweringError
from repro.core import Shield
from repro.envs import make_environment
from repro.envs.base import EnvironmentContext
from repro.envs.disturbance import SinusoidalDisturbance
from repro.envs.registry import BENCHMARKS
from repro.lang import (
    AffineProgram,
    AffineSketch,
    GuardedProgram,
    Invariant,
    InvariantUnion,
    PolynomialSketch,
    TrueInvariant,
    UnreachableBranchError,
)
from repro.polynomials import Monomial, Polynomial
from repro.rl.networks import MLP
from repro.rl.policies import NeuralPolicy
from repro.runtime import EvaluationProtocol, evaluate_policy
from repro.runtime.monitored import monitor_fleet

ALL_BENCHMARKS = tuple(BENCHMARKS)


def _random_polynomial(rng, num_vars, degree=3, terms=6):
    poly = Polynomial.zero(num_vars)
    for _ in range(terms):
        exponents = tuple(int(e) for e in rng.integers(0, degree + 1, size=num_vars))
        if sum(exponents) > degree:
            continue
        poly = poly + Polynomial(
            num_vars, {Monomial(exponents): float(rng.normal(scale=2.0))}
        )
    return poly


def _random_program(rng):
    state_dim = int(rng.integers(1, 5))
    action_dim = int(rng.integers(1, 3))
    if rng.random() < 0.5:
        sketch = AffineSketch(
            state_dim=state_dim,
            action_dim=action_dim,
            include_bias=bool(rng.random() < 0.5),
            action_low=-np.ones(action_dim) if rng.random() < 0.3 else None,
            action_high=np.ones(action_dim) if rng.random() < 0.3 else None,
        )
    else:
        sketch = PolynomialSketch(
            state_dim=state_dim, action_dim=action_dim, degree=int(rng.integers(1, 4))
        )
    return sketch.instantiate(rng.normal(scale=2.5, size=sketch.num_parameters))


def _make_shield(env, seed=0, measure_time=False):
    rng = np.random.default_rng(seed)
    d, m = env.state_dim, env.action_dim
    scale = env.action_high if env.action_high is not None else np.ones(m)
    network = MLP(d, (24, 16), m, output_scale=scale, seed=seed)
    program = AffineProgram(
        gain=rng.normal(scale=0.2, size=(m, d)), names=env.state_names
    )
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(d)) - 0.5, names=env.state_names
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=env.state_names)
    return Shield(
        env=env,
        neural_policy=NeuralPolicy(network),
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=measure_time,
    )


def _campaign_signature(metrics):
    return [
        (e.steps, e.unsafe_steps, e.interventions, e.steps_to_steady)
        for e in metrics.episodes
    ]


# ------------------------------------------------------------------- lowering
class TestPolyBlockLowering:
    def test_block_matches_evaluate_batch_over_random_polynomials(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            num_vars = int(rng.integers(1, 6))
            polys = [
                _random_polynomial(rng, num_vars, degree=int(rng.integers(1, 5)))
                for _ in range(int(rng.integers(1, 4)))
            ]
            block = PolyBlock.from_polynomials(polys)
            points = rng.normal(scale=1.5, size=(40, num_vars))
            values = block.evaluate(points)
            for column, poly in enumerate(polys):
                np.testing.assert_allclose(
                    values[:, column],
                    poly.evaluate_batch(points),
                    rtol=1e-9,
                    atol=1e-12,
                )

    def test_constant_and_zero_polynomials(self):
        block = PolyBlock.from_polynomials(
            [Polynomial.constant(3.5, 2), Polynomial.zero(2)]
        )
        points = np.random.default_rng(1).normal(size=(7, 2))
        values = block.evaluate(points)
        np.testing.assert_array_equal(values[:, 0], np.full(7, 3.5))
        np.testing.assert_array_equal(values[:, 1], np.zeros(7))

    def test_affine_and_quadratic_fast_paths_are_selected(self):
        affine = PolyBlock.from_polynomials([Polynomial.affine([1.0, -2.0], 0.5, 2)])
        assert affine.degree == 1 and affine._affine_weights is not None
        quadratic = PolyBlock.from_polynomials(
            [Polynomial.quadratic_form(np.array([[2.0, 1.0], [0.0, 3.0]]))]
        )
        assert quadratic.degree == 2 and quadratic._quad_matrices is not None
        rng = np.random.default_rng(2)
        points = rng.normal(size=(25, 2))
        np.testing.assert_allclose(
            quadratic.evaluate(points)[:, 0],
            Polynomial.quadratic_form(np.array([[2.0, 1.0], [0.0, 3.0]])).evaluate_batch(
                points
            ),
            rtol=1e-9,
        )

    def test_mixed_variable_count_rejected(self):
        with pytest.raises(LoweringError):
            PolyBlock.from_polynomials([Polynomial.zero(2), Polynomial.zero(3)])


class TestCompiledPrograms:
    def test_random_sketch_instantiations_agree_with_interpreter(self):
        rng = np.random.default_rng(2024)
        for _ in range(120):
            program = _random_program(rng)
            kernel = lower_program(program)
            states = rng.normal(scale=1.5, size=(30, program.state_dim))
            with interpreted():
                expected = program.act_batch(states)
            np.testing.assert_allclose(kernel.act(np.array(states)), expected, rtol=1e-9, atol=1e-11)
            # Scalar path agrees row by row as well.
            with interpreted():
                row = program.act(states[0])
            np.testing.assert_allclose(kernel.act(states[:1])[0], row, rtol=1e-9, atol=1e-11)

    def test_guarded_dispatch_matches_interpreter(self):
        rng = np.random.default_rng(5)
        inner = Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - 0.25)
        outer = Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - 1.0)
        program = GuardedProgram(
            branches=[
                (inner, AffineProgram(gain=[[1.0, 2.0]])),
                (outer, AffineProgram(gain=[[-3.0, 0.5]], bias=[0.1])),
            ],
        )
        kernel = lower_program(program)
        states = rng.normal(scale=0.8, size=(200, 2))
        with interpreted():
            expected = program.act_batch(states)
        np.testing.assert_allclose(kernel.act(np.array(states)), expected, rtol=1e-12)
        # Rows outside both invariants exercise the lenient closest-branch rule.
        far = rng.normal(scale=4.0, size=(50, 2))
        far = far[~outer.holds_batch(far)]
        assert far.shape[0] > 0
        with interpreted():
            expected_far = program.act_batch(far)
        np.testing.assert_allclose(kernel.act(np.array(far)), expected_far, rtol=1e-12)

    def test_guarded_fallback_true_invariant_and_strict(self):
        fallback = AffineProgram(gain=[[0.5, -0.5]])
        with_fallback = GuardedProgram(
            branches=[
                (
                    Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - 0.1),
                    AffineProgram(gain=[[1.0, 0.0]]),
                )
            ],
            fallback=fallback,
        )
        states = np.array([[0.1, 0.1], [3.0, 3.0]])
        kernel = lower_program(with_fallback)
        with interpreted():
            expected = with_fallback.act_batch(states)
        np.testing.assert_allclose(kernel.act(states.copy()), expected, rtol=1e-12)

        with_true = GuardedProgram(
            branches=[
                (
                    Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - 0.1),
                    AffineProgram(gain=[[1.0, 0.0]]),
                ),
                (TrueInvariant(2), AffineProgram(gain=[[0.0, 1.0]])),
            ],
        )
        kernel = lower_program(with_true)
        with interpreted():
            expected = with_true.act_batch(states)
        np.testing.assert_allclose(kernel.act(states.copy()), expected, rtol=1e-12)

        strict = GuardedProgram(
            branches=[
                (
                    Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - 0.1),
                    AffineProgram(gain=[[1.0, 0.0]]),
                ),
                (
                    Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - 0.2),
                    AffineProgram(gain=[[0.0, 1.0]]),
                ),
            ],
            strict=True,
        )
        kernel = lower_program(strict)
        with pytest.raises(UnreachableBranchError):
            kernel.act(np.array([[5.0, 5.0]]))


# ------------------------------------------------------- scalar fast paths
class TestScalarFastPaths:
    def test_guarded_act_matches_interpreted_reference(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            program = GuardedProgram(
                branches=[
                    (
                        Invariant(barrier=_random_polynomial(rng, 3, degree=2) - 0.5),
                        _random_program_with_dims(rng, 3, 2),
                    ),
                    (TrueInvariant(3), _random_program_with_dims(rng, 3, 2)),
                ]
            )
            state = rng.normal(size=3)
            compiled_action = program.act(state)
            interpreted_action = program.act_interpreted(state)
            np.testing.assert_allclose(
                compiled_action, interpreted_action, rtol=1e-9, atol=1e-11
            )

    def test_expr_evaluate_matches_tree_walk(self):
        rng = np.random.default_rng(8)
        from repro.lang import expr_from_polynomial

        for _ in range(25):
            num_vars = int(rng.integers(1, 5))
            expr = expr_from_polynomial(_random_polynomial(rng, num_vars))
            state = rng.normal(size=num_vars)
            fast = expr.evaluate(state)
            with interpreted():
                slow = expr.evaluate(state)
            assert fast == pytest.approx(slow, rel=1e-9, abs=1e-11)

    def test_interpreted_context_and_env_flag_disable_compilation(self, monkeypatch):
        assert compilation_enabled()
        with interpreted():
            assert not compilation_enabled()
        assert compilation_enabled()
        monkeypatch.setenv("REPRO_NO_COMPILE", "1")
        assert not compilation_enabled()
        set_compilation(True)
        assert compilation_enabled()
        set_compilation(None)
        assert not compilation_enabled()


def _random_program_with_dims(rng, state_dim, action_dim):
    sketch = AffineSketch(state_dim=state_dim, action_dim=action_dim, include_bias=True)
    return sketch.instantiate(rng.normal(scale=1.5, size=sketch.num_parameters))


# ----------------------------------------------------------------- dynamics
class TestCompiledDynamics:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_lowered_rate_matches_native_batch(self, name):
        env = make_environment(name)
        dynamics = CompiledDynamics(env)
        rng = np.random.default_rng(11)
        states = env.init_region.sample(rng, 20)
        actions = rng.normal(scale=1.0, size=(20, env.action_dim))
        np.testing.assert_allclose(
            dynamics.rate(states, actions),
            env.rate_batch(states, actions),
            rtol=1e-9,
            atol=1e-11,
        )

    def test_generic_fallback_env_gets_compiled_dynamics(self):
        env = _CustomRowwiseEnv()
        rng = np.random.default_rng(12)
        shield = _make_shield(env, seed=3)
        protocol = EvaluationProtocol(episodes=12, steps=40, seed=4)
        set_compilation(False)
        try:
            shield.reset_statistics()
            slow = evaluate_policy(env, shield, protocol, shield=shield)
        finally:
            set_compilation(None)
        shield.reset_statistics()
        fast = evaluate_policy(env, shield, protocol, shield=shield)
        assert [e.interventions for e in slow.episodes] == [
            e.interventions for e in fast.episodes
        ]
        np.testing.assert_allclose(
            [e.total_reward for e in slow.episodes],
            [e.total_reward for e in fast.episodes],
            rtol=1e-8,
        )


class _CustomRowwiseEnv(EnvironmentContext):
    """A nonlinear env that never defined a vectorised ``rate_batch``."""

    def __init__(self):
        from repro.certificates.regions import Box

        super().__init__(
            state_dim=2,
            action_dim=1,
            init_region=Box((-0.2, -0.2), (0.2, 0.2)),
            safe_box=Box((-1.0, -1.0), (1.0, 1.0)),
            domain=Box((-2.0, -2.0), (2.0, 2.0)),
            dt=0.01,
            action_low=[-5.0],
            action_high=[5.0],
        )
        self.name = "custom_rowwise"

    def rate(self, state, action):
        x, y = state
        return [y, -0.5 * y - x - x * x * x + action[0]]


# ------------------------------------------------------------- campaign parity
class TestCampaignEquivalence:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_shielded_campaign_counters_identical(self, name):
        env = make_environment(name)
        protocol = EvaluationProtocol(episodes=20, steps=60, seed=0)

        shield = _make_shield(env, seed=0)
        set_compilation(False)
        try:
            slow = evaluate_policy(env, shield, protocol, shield=shield)
        finally:
            set_compilation(None)
        slow_stats = (shield.statistics.decisions, shield.statistics.interventions)

        shield = _make_shield(env, seed=0)
        fast = evaluate_policy(env, shield, protocol, shield=shield)
        fast_stats = (shield.statistics.decisions, shield.statistics.interventions)

        assert _campaign_signature(slow) == _campaign_signature(fast)
        assert slow_stats == fast_stats
        np.testing.assert_allclose(
            [e.total_reward for e in slow.episodes],
            [e.total_reward for e in fast.episodes],
            rtol=1e-9,
        )

    @pytest.mark.parametrize("seed", [1, 7])
    @pytest.mark.parametrize("name", ["pendulum", "cartpole", "8_car_platoon"])
    def test_campaign_parity_across_seeds(self, name, seed):
        env = make_environment(name)
        protocol = EvaluationProtocol(episodes=15, steps=50, seed=seed)
        shield = _make_shield(env, seed=seed)
        set_compilation(False)
        try:
            slow = evaluate_policy(env, shield, protocol, shield=shield)
        finally:
            set_compilation(None)
        shield = _make_shield(env, seed=seed)
        fast = evaluate_policy(env, shield, protocol, shield=shield)
        assert _campaign_signature(slow) == _campaign_signature(fast)

    def test_disturbed_fleet_campaign_parity(self):
        # lane_keeping carries a built-in bounded disturbance: the compiled
        # stepper must consume the generator stream exactly like step_batch.
        env = make_environment("lane_keeping")
        assert env.disturbance_bound is not None
        protocol = EvaluationProtocol(episodes=18, steps=60, seed=3)
        shield = _make_shield(env, seed=3)
        set_compilation(False)
        try:
            slow = evaluate_policy(env, shield, protocol, shield=shield)
        finally:
            set_compilation(None)
        shield = _make_shield(env, seed=3)
        fast = evaluate_policy(env, shield, protocol, shield=shield)
        assert _campaign_signature(slow) == _campaign_signature(fast)
        np.testing.assert_allclose(
            [e.total_reward for e in slow.episodes],
            [e.total_reward for e in fast.episodes],
            rtol=1e-9,
        )

    def test_unshielded_policy_campaign_parity(self):
        env = make_environment("satellite")
        protocol = EvaluationProtocol(episodes=16, steps=60, seed=2)
        policy = NeuralPolicy(
            MLP(env.state_dim, (16, 12), env.action_dim, output_scale=env.action_high, seed=2)
        )
        set_compilation(False)
        try:
            slow = evaluate_policy(env, policy, protocol)
        finally:
            set_compilation(None)
        fast = evaluate_policy(env, policy, protocol)
        assert _campaign_signature(slow) == _campaign_signature(fast)
        np.testing.assert_allclose(
            [e.total_reward for e in slow.episodes],
            [e.total_reward for e in fast.episodes],
            rtol=1e-9,
        )

    def test_program_policy_campaign_parity(self):
        env = make_environment("pendulum")
        protocol = EvaluationProtocol(episodes=16, steps=60, seed=5)
        program = _make_shield(env, seed=5).program
        set_compilation(False)
        try:
            slow = evaluate_policy(env, program, protocol)
        finally:
            set_compilation(None)
        fast = evaluate_policy(env, program, protocol)
        assert _campaign_signature(slow) == _campaign_signature(fast)


# ------------------------------------------------------------ monitored parity
class TestMonitoredEquivalence:
    @pytest.mark.parametrize("name", ["satellite", "pendulum", "cartpole"])
    def test_monitored_fleet_report_identical(self, name):
        env = make_environment(name)
        shield = _make_shield(env, seed=1)
        set_compilation(False)
        try:
            slow = monitor_fleet(
                shield, episodes=15, steps=50, rng=np.random.default_rng(9)
            )
        finally:
            set_compilation(None)
        shield = _make_shield(env, seed=1)
        fast = monitor_fleet(shield, episodes=15, steps=50, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(slow.interventions, fast.interventions)
        np.testing.assert_array_equal(slow.model_mismatches, fast.model_mismatches)
        np.testing.assert_array_equal(slow.invariant_excursions, fast.invariant_excursions)
        np.testing.assert_array_equal(slow.unsafe_steps, fast.unsafe_steps)
        np.testing.assert_allclose(
            slow.peak_barrier_values, fast.peak_barrier_values, rtol=1e-9
        )
        np.testing.assert_allclose(slow.final_states, fast.final_states, rtol=1e-9)
        if slow.disturbance_estimate is not None:
            np.testing.assert_allclose(
                slow.disturbance_estimate.bound,
                fast.disturbance_estimate.bound,
                rtol=1e-9,
            )

    def test_monitored_with_explicit_disturbance_model(self):
        env = make_environment("satellite")
        shield = _make_shield(env, seed=2)
        disturbance = SinusoidalDisturbance(
            amplitude=np.array([0.05, 0.05]), period=40.0, jitter=0.01
        )
        set_compilation(False)
        try:
            slow = monitor_fleet(
                shield,
                episodes=12,
                steps=40,
                rng=np.random.default_rng(3),
                disturbance=disturbance,
            )
        finally:
            set_compilation(None)
        shield = _make_shield(env, seed=2)
        fast = monitor_fleet(
            shield,
            episodes=12,
            steps=40,
            rng=np.random.default_rng(3),
            disturbance=SinusoidalDisturbance(
                amplitude=np.array([0.05, 0.05]), period=40.0, jitter=0.01
            ),
        )
        np.testing.assert_array_equal(slow.interventions, fast.interventions)
        np.testing.assert_array_equal(slow.unsafe_steps, fast.unsafe_steps)
        np.testing.assert_allclose(slow.final_states, fast.final_states, rtol=1e-9)


# --------------------------------------------------------------- other kernels
class TestAuxiliaryKernels:
    def test_ars_fused_returns_match_simulate_batch(self):
        from repro.rl.random_search import _environment_return
        from repro.rl.policies import LinearPolicy

        env = make_environment("satellite")
        policy = LinearPolicy(
            gain=np.array([[-1.0, -0.5]]),
            action_low=env.action_low,
            action_high=env.action_high,
        )
        set_compilation(False)
        try:
            slow = _environment_return(env, policy, 6, 40, np.random.default_rng(4))
        finally:
            set_compilation(None)
        fast = _environment_return(env, policy, 6, 40, np.random.default_rng(4))
        assert slow == pytest.approx(fast, rel=1e-10)

    def test_batch_reaches_unsafe_matches_interpreter(self):
        from repro.core.replay import batch_reaches_unsafe

        env = make_environment("pendulum")
        program = _make_shield(env, seed=6).program
        rng = np.random.default_rng(6)
        states = env.domain.sample(rng, 40)
        set_compilation(False)
        try:
            slow = batch_reaches_unsafe(env, program, states, horizon=60)
        finally:
            set_compilation(None)
        fast = batch_reaches_unsafe(env, program, states, horizon=60)
        np.testing.assert_array_equal(slow, fast)


# ----------------------------------------------------------------- kernel cache
class TestKernelCache:
    def test_second_campaign_over_stored_shield_hits_cache(self):
        from repro.store import ShieldStore

        store = ShieldStore("tests/data/counterexamples/store")
        entries = store.find(environment="satellite")
        assert entries, "regression corpus must contain a satellite shield"
        artifact = store.get(entries[0].key)
        env = make_environment("satellite")
        policy = NeuralPolicy(
            MLP(env.state_dim, (16, 12), env.action_dim, output_scale=env.action_high, seed=0)
        )
        protocol = EvaluationProtocol(episodes=8, steps=30, seed=0)

        clear_kernel_cache()
        shield = artifact.build_shield(env, policy)
        first = evaluate_policy(env, shield, protocol, shield=shield)
        after_first = kernel_cache_stats()
        assert after_first["misses"] >= 1  # the artifact compiled exactly once

        shield = artifact.build_shield(env, policy)
        second = evaluate_policy(env, shield, protocol, shield=shield)
        after_second = kernel_cache_stats()
        assert after_second["misses"] == after_first["misses"]
        assert after_second["hits"] > after_first["hits"]
        assert _campaign_signature(first) == _campaign_signature(second)

    def test_unlowerable_program_falls_back_to_interpreter(self):
        class OpaqueProgram(AffineProgram):
            """Subclass the serializer does not recognise."""

        # program_to_dict serialises subclasses of AffineProgram fine, so use
        # a genuinely foreign object instead.
        class ForeignProgram:
            state_dim = 2
            action_dim = 1

            def act(self, state):
                return np.zeros(1)

            def act_batch(self, states):
                return np.zeros((states.shape[0], 1))

        assert compiled_program_for(ForeignProgram()) is None

    def test_lru_bound_evicts_transient_candidate_kernels(self):
        cache = KernelCache(max_entries=3)
        for key in "abc":
            cache.get_or_build(key, lambda key=key: key.upper())
        assert cache.get_or_build("a", lambda: "rebuilt") == "A"  # still warm
        cache.get_or_build("d", lambda: "D")  # evicts the coldest entry ("b")
        assert len(cache) == 3
        assert cache.get_or_build("b", lambda: "rebuilt") == "rebuilt"
        assert cache.get_or_build("a", lambda: "rebuilt-too") == "A"

    def test_fingerprint_keying_shares_kernels_across_equal_programs(self):
        clear_kernel_cache()
        rng = np.random.default_rng(13)
        gain = rng.normal(size=(1, 2))
        first = compiled_program_for(AffineProgram(gain=gain.copy()))
        before = kernel_cache_stats()
        second = compiled_program_for(AffineProgram(gain=gain.copy()))
        after = kernel_cache_stats()
        assert first is second
        assert after["hits"] == before["hits"] + 1
