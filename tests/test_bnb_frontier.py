"""Differential suite: the batched frontier branch-and-bound engine must be
bit-identical to the scalar reference engine.

Both engines share the same batch-size-independent numeric kernels
(`repro.certificates.interval_batch`) and the same canonical breadth-first
frontier order, so every observable of a query — verdict, counterexample,
``boxes_explored``, ``max_depth_reached`` — must match exactly, not just
approximately.  The suite drives both engines through:

* real verification-condition queries built from registry environments
  (including disturbed condition-(10) product-box queries and polynomial
  dynamics), with and without sub-level-set constraints;
* budget-exhaustion and resolution-limit terminations, under both
  ``resolution_limit_policy`` modes;
* randomized polynomial/box/constraint queries;
* the CEGIS cover query ``find_uncovered_point``.

It also pins the two supporting contracts: the numeric kernels are
batch-size independent (row values never depend on frontier size), and
resolution-limit sampling is a pure function of the query (no verifier
call-history dependence).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_lqr_policy
from repro.certificates import Box, BranchAndBoundVerifier, frontier_enabled
from repro.certificates.interval_batch import eval_points, lower_interval, range_boxes
from repro.envs import make_environment
from repro.lang import AffineProgram
from repro.polynomials import Polynomial, polynomial_range
from repro.polynomials.monomial import Monomial


def _assert_identical(result_a, result_b, context=""):
    assert result_a.verified == result_b.verified, context
    assert result_a.boxes_explored == result_b.boxes_explored, context
    assert result_a.max_depth_reached == result_b.max_depth_reached, context
    if result_a.counterexample is None or result_b.counterexample is None:
        assert result_a.counterexample is None and result_b.counterexample is None, context
    else:
        assert np.array_equal(result_a.counterexample, result_b.counterexample), context


def _both(query, **verifier_kwargs):
    scalar = query(BranchAndBoundVerifier(frontier=False, **verifier_kwargs))
    frontier = query(BranchAndBoundVerifier(frontier=True, **verifier_kwargs))
    _assert_identical(scalar, frontier, context=repr(verifier_kwargs))
    return frontier


def _rand_poly(dim, n_terms, max_degree, rng):
    terms = {}
    for _ in range(n_terms):
        exponents = tuple(int(rng.integers(0, max_degree + 1)) for _ in range(dim))
        terms[Monomial(exponents)] = float(rng.normal())
    return Polynomial(dim, terms)


def _lyapunov_decrease(env, program):
    """V(s') - V(s) for the closed loop under ``program``, V = ||s||^2."""
    closed_loop = env.closed_loop_polynomials(program)
    value = Polynomial.quadratic_form(np.eye(env.state_dim))
    return value.substitute(closed_loop) - value, value


def _lqr_program(env):
    return AffineProgram(gain=make_lqr_policy(env).gain)


# ------------------------------------------------------- registry env queries
@pytest.mark.parametrize(
    "name, overrides",
    [
        ("satellite", {}),
        ("satellite", {"disturbance_bound": [0.01, 0.01]}),
        ("duffing", {}),  # polynomial (cubic) dynamics
        ("oscillator", {}),
        ("8_car_platoon", {}),  # high-dimensional: centre-only falsification
    ],
    ids=["satellite", "satellite-disturbed", "duffing", "oscillator", "platoon8"],
)
def test_registry_env_queries_identical(name, overrides):
    env = make_environment(name, **overrides)
    program = _lqr_program(env)
    decrease, value = _lyapunov_decrease(env, program)
    sublevel = value - 0.25  # condition-(10)-style sub-level constraint
    boxes = [env.safe_box]
    for max_boxes in (50, 1_500):
        _both(
            lambda v: v.prove_nonpositive(decrease, boxes, [sublevel]),
            max_boxes=max_boxes,
            min_width=float(np.max(env.safe_box.widths)) / 64.0,
        )
    # An unsafe gain produces genuine counterexamples — they must agree too.
    bad = AffineProgram(gain=5.0 * np.ones((env.action_dim, env.state_dim)))
    bad_decrease, _ = _lyapunov_decrease(env, bad)
    _both(
        lambda v: v.prove_nonpositive(bad_decrease, boxes, [sublevel]),
        max_boxes=1_500,
        min_width=float(np.max(env.safe_box.widths)) / 64.0,
    )


def test_disturbed_condition_ten_product_box_identical():
    """The lifted (s, d) induction query of condition (10), as barrier.py poses it."""
    env = make_environment("satellite", disturbance_bound=[0.02, 0.02])
    program = _lqr_program(env)
    closed_loop = env.closed_loop_polynomials(program)
    n = env.state_dim
    lift = [Polynomial.variable(i, 2 * n) for i in range(n)]
    barrier = Polynomial.quadratic_form(np.eye(n)) - 0.5
    lifted_barrier = barrier.substitute(lift)
    successors = [
        poly.substitute(lift) + env.dt * Polynomial.variable(n + i, 2 * n)
        for i, poly in enumerate(closed_loop)
    ]
    next_barrier = barrier.substitute(successors)
    bound = np.asarray(env.disturbance_bound, dtype=float)
    product_box = Box(
        low=tuple(env.safe_box.low) + tuple(-bound),
        high=tuple(env.safe_box.high) + tuple(bound),
    )
    for max_boxes in (30, 3_000):
        _both(
            lambda v: v.prove_nonpositive(next_barrier, [product_box], [lifted_barrier]),
            max_boxes=max_boxes,
            min_width=0.05,
        )


def test_prove_positive_identical():
    env = make_environment("duffing")
    barrier = Polynomial.quadratic_form(np.eye(env.state_dim)) - 0.3
    for box in env.unsafe_cover_boxes():
        _both(lambda v: v.prove_positive(barrier, [box]), max_boxes=4_000, min_width=0.01)


# ---------------------------------------------------- terminal-path coverage
def _band_poly():
    """-16x^4 + 8x^2 - 0.5 + 1.5x over one variable.

    Positive only on a thin interior band near x ~ 0.55 — never at the
    centres/corners the candidate check probes — while the monomial-wise
    interval bound stays inconclusive on every surrounding box (the classic
    dependency-widening of natural interval extensions).  This is the query
    shape that genuinely reaches resolution-limit sampling.
    """
    x = Polynomial.variable(0, 1)
    return -16.0 * x**4 + 8.0 * x**2 - 0.5 + 1.5 * x


def test_budget_exhaustion_identical():
    """The budget counterexample is the head of the canonical frontier."""
    env = make_environment("8_car_platoon")
    program = _lqr_program(env)
    decrease, value = _lyapunov_decrease(env, program)
    outside_ball = 0.01 - value
    box = env.safe_box
    for max_boxes in (1, 2, 7, 64, 300):
        result = _both(
            lambda v: v.prove_nonpositive(decrease, [box], [outside_ball]),
            max_boxes=max_boxes,
            min_width=1e-9,
        )
        assert not result.verified
        assert result.max_depth_reached
        assert result.counterexample is not None
        assert result.boxes_explored == max_boxes


def test_resolution_limit_reject_identical():
    """Reject policy: the first feasible-centre limit box is the refutation."""
    box = Box((-1.0,), (-0.7,))  # band poly is strictly negative here
    result = _both(
        lambda v: v.prove_nonpositive(_band_poly(), [box]),
        max_boxes=50_000,
        min_width=0.5,
        resolution_limit_policy="reject",
    )
    assert not result.verified and result.max_depth_reached
    assert np.array_equal(result.counterexample, box.center)


def test_resolution_limit_sample_accepts_identical():
    """Sample policy: a violation-free limit box is accepted after sampling."""
    result = _both(
        lambda v: v.prove_nonpositive(_band_poly(), [Box((-1.0,), (-0.7,))]),
        max_boxes=50_000,
        min_width=0.5,
        resolution_limit_policy="sample",
        seed=11,
    )
    assert result.verified


def test_resolution_sampling_ordinal_accounting_identical():
    """Sample ordinals accumulate across limit boxes and frontier rounds.

    Round 1 resolves the narrow box (ordinal 0, no hit) and splits the wide
    one; round 2 samples [-2,0] (ordinal 1, no hit — the band polynomial is
    negative there) and then finds the witness by sampling [0,2] (ordinal 2).
    A per-round or per-engine ordinal mixup would change which sample stream
    box [0,2] receives and break scalar/frontier identity.
    """
    boxes = [Box((-1.0,), (-0.7,)), Box((-2.0,), (2.0,))]
    result = _both(
        lambda v: v.prove_nonpositive(_band_poly(), boxes),
        max_boxes=50_000,
        min_width=2.5,
        resolution_samples=64,
        seed=2,
    )
    assert not result.verified
    assert result.counterexample is not None
    # the witness can only live in the positive band inside [0, 2]
    assert 0.0 < result.counterexample[0] < 1.0


# ------------------------------------------------------- randomized queries
@pytest.mark.parametrize("policy", ["sample", "reject"])
def test_randomized_queries_identical(policy):
    rng = np.random.default_rng(1234 if policy == "sample" else 4321)
    for _ in range(40):
        dim = int(rng.integers(1, 5))
        target = _rand_poly(dim, int(rng.integers(1, 6)), 3, rng)
        constraints = [
            _rand_poly(dim, int(rng.integers(1, 4)), 2, rng)
            for _ in range(int(rng.integers(0, 3)))
        ]
        low = rng.uniform(-2, 0, dim)
        high = low + rng.uniform(0.5, 3, dim)
        boxes = [Box(tuple(low), tuple(high))]
        kwargs = dict(
            max_boxes=int(rng.integers(5, 3_000)),
            min_width=float(rng.uniform(1e-3, 0.3)),
            resolution_limit_policy=policy,
            seed=7,
        )
        _both(lambda v: v.prove_nonpositive(target, boxes, constraints), **kwargs)
        _both(lambda v: v.prove_positive(target, boxes, constraints), **kwargs)


def test_find_uncovered_point_identical():
    rng = np.random.default_rng(99)
    for _ in range(40):
        dim = int(rng.integers(1, 4))
        barriers = [
            _rand_poly(dim, int(rng.integers(1, 5)), 2, rng)
            for _ in range(int(rng.integers(0, 4)))
        ]
        margins = [float(rng.uniform(-0.5, 2.0)) for _ in barriers]
        low = rng.uniform(-1.5, 0, dim)
        high = low + rng.uniform(0.5, 2.5, dim)
        box = Box(tuple(low), tuple(high))
        kwargs = dict(
            max_boxes=int(rng.integers(3, 2_000)),
            min_width=float(rng.uniform(1e-3, 0.2)),
        )
        scalar = BranchAndBoundVerifier(frontier=False, **kwargs).find_uncovered_point(
            box, barriers, margins
        )
        frontier = BranchAndBoundVerifier(frontier=True, **kwargs).find_uncovered_point(
            box, barriers, margins
        )
        assert (scalar is None) == (frontier is None)
        if scalar is not None:
            assert np.array_equal(scalar, frontier)


def test_find_uncovered_point_empty_barriers():
    box = Box((-1.0, 0.0), (1.0, 2.0))
    for flag in (False, True):
        point = BranchAndBoundVerifier(frontier=flag).find_uncovered_point(box, [])
        assert np.array_equal(point, box.center)


# --------------------------------------------------------- numeric contracts
def test_kernels_batch_size_independent():
    """Row values of the shared kernels never depend on the batch size."""
    rng = np.random.default_rng(7)
    for _ in range(25):
        dim = int(rng.integers(1, 6))
        poly = _rand_poly(dim, int(rng.integers(1, 8)), 4, rng)
        table = lower_interval(poly)
        low = rng.uniform(-2, 1, (17, dim))
        high = low + rng.uniform(0.0, 2, (17, dim))
        batch_lo, batch_hi = range_boxes(table, low, high)
        points = rng.uniform(-2, 2, (17, dim))
        batch_vals = eval_points(table, points)
        for i in range(17):
            row_lo, row_hi = range_boxes(table, low[i : i + 1], high[i : i + 1])
            assert row_lo[0] == batch_lo[i] and row_hi[0] == batch_hi[i]
            assert eval_points(table, points[i : i + 1])[0] == batch_vals[i]


def test_range_boxes_matches_interval_arithmetic():
    """The batched fold reproduces `polynomial_range` up to rounding noise."""
    rng = np.random.default_rng(21)
    for _ in range(50):
        dim = int(rng.integers(1, 5))
        poly = _rand_poly(dim, int(rng.integers(1, 8)), 4, rng)
        low = rng.uniform(-2, 1, dim)
        high = low + rng.uniform(0.0, 2, dim)
        box = Box(tuple(low), tuple(high))
        reference = polynomial_range(poly, box.to_intervals())
        got_lo, got_hi = range_boxes(lower_interval(poly), low[None], high[None])
        assert np.isclose(got_lo[0], reference.lo, rtol=1e-12, atol=1e-12)
        assert np.isclose(got_hi[0], reference.hi, rtol=1e-12, atol=1e-12)


def test_lowering_memoized_per_polynomial():
    poly = Polynomial.quadratic_form(np.eye(3))
    assert lower_interval(poly) is lower_interval(poly)


# ----------------------------------------------------------- RNG regression
def test_resolution_sampling_independent_of_call_history():
    """Verdicts must not depend on how many queries the verifier ran before.

    The old engine seeded one mutable generator at construction, so the
    samples a resolution-limit box received depended on every earlier query
    that sampled.  Sampling is now derived per query from (seed, canonical
    query hash), making each verdict a pure function of its query.
    """
    target = _band_poly()  # decided by resolution-limit sampling, see above
    box = Box((-1.0,), (1.0,))
    other = Polynomial.quadratic_form(np.eye(1)) - 5.0
    kwargs = dict(max_boxes=50_000, min_width=2.5, seed=3)
    for flag in (False, True):
        fresh = BranchAndBoundVerifier(frontier=flag, **kwargs)
        baseline = fresh.prove_nonpositive(target, [box])
        assert not baseline.verified  # found by sampling the limit box
        warmed = BranchAndBoundVerifier(frontier=flag, **kwargs)
        for _ in range(3):  # burn unrelated sampling queries first
            warmed.prove_nonpositive(_band_poly(), [Box((-1.0,), (-0.7,))])
            warmed.prove_positive(other, [box])
        repeat = warmed.prove_nonpositive(target, [box])
        _assert_identical(baseline, repeat, context=f"frontier={flag}")
        # and re-running the same query on the same verifier is idempotent
        _assert_identical(baseline, warmed.prove_nonpositive(target, [box]))


def test_resolution_sampling_differs_across_seeds():
    """The per-query derivation still respects the configured seed."""
    box = Box((-1.0,), (1.0,))
    results = [
        BranchAndBoundVerifier(max_boxes=50_000, min_width=2.5, seed=seed)
        .prove_nonpositive(_band_poly(), [box])
        .counterexample
        for seed in (0, 1)
    ]
    assert results[0] is not None and results[1] is not None
    assert not np.array_equal(results[0], results[1])


# ------------------------------------------------------------- engine toggle
def test_environment_flag_selects_scalar_engine(monkeypatch):
    monkeypatch.setenv("REPRO_NO_BATCH_BNB", "1")
    assert not frontier_enabled()
    assert not BranchAndBoundVerifier()._use_frontier()
    # An explicit constructor choice overrides the environment flag.
    assert BranchAndBoundVerifier(frontier=True)._use_frontier()
    monkeypatch.delenv("REPRO_NO_BATCH_BNB")
    assert frontier_enabled()
    assert BranchAndBoundVerifier()._use_frontier()
    assert not BranchAndBoundVerifier(frontier=False)._use_frontier()
