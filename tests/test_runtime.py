"""Tests for the deployment/measurement harness and the experiment infrastructure."""

import numpy as np
import pytest

from repro.envs import make_quadcopter, make_satellite
from repro.experiments import ExperimentScale, format_table
from repro.rl import train_oracle
from repro.runtime import (
    DeploymentMetrics,
    EpisodeMetrics,
    EvaluationProtocol,
    evaluate_policy,
    run_episode,
)


class TestMetrics:
    def _episode(self, unsafe=0, interventions=0, steady=None, steps=100, seconds=0.1):
        return EpisodeMetrics(
            steps=steps,
            unsafe_steps=unsafe,
            interventions=interventions,
            steps_to_steady=steady,
            total_reward=-1.0,
            wall_clock_seconds=seconds,
        )

    def test_failures_count_episodes_not_steps(self):
        metrics = DeploymentMetrics()
        metrics.add(self._episode(unsafe=5))
        metrics.add(self._episode(unsafe=0))
        assert metrics.failures == 1
        assert metrics.unsafe_steps == 5

    def test_intervention_rate(self):
        metrics = DeploymentMetrics()
        metrics.add(self._episode(interventions=10, steps=100))
        assert metrics.intervention_rate == pytest.approx(0.1)

    def test_steps_to_steady_defaults_to_episode_length(self):
        metrics = DeploymentMetrics()
        metrics.add(self._episode(steady=20, steps=100))
        metrics.add(self._episode(steady=None, steps=100))
        assert metrics.mean_steps_to_steady == pytest.approx(60.0)

    def test_overhead_vs_baseline(self):
        fast = DeploymentMetrics()
        fast.add(self._episode(seconds=1.0))
        slow = DeploymentMetrics()
        slow.add(self._episode(seconds=1.2))
        assert slow.overhead_vs(fast) == pytest.approx(0.2)

    def test_summary_keys(self):
        metrics = DeploymentMetrics()
        metrics.add(self._episode())
        summary = metrics.summary()
        for key in ("failures", "interventions", "steps_to_steady"):
            assert key in summary

    def test_empty_metrics(self):
        metrics = DeploymentMetrics()
        assert metrics.intervention_rate == 0.0
        assert np.isnan(metrics.mean_steps_to_steady)


class TestSimulation:
    def test_run_episode_counts_unsafe_steps(self):
        env = make_quadcopter()
        rng = np.random.default_rng(0)

        def runaway(state):
            return np.asarray(env.action_high)

        episode = run_episode(env, runaway, steps=200, rng=rng)
        assert episode.steps == 200
        assert episode.unsafe_steps > 0
        assert episode.failed

    def test_evaluate_policy_protocol_is_reproducible(self):
        env = make_satellite()
        oracle = train_oracle(env, method="cloned", hidden_sizes=(16, 12), seed=0).policy
        protocol = EvaluationProtocol(episodes=3, steps=50, seed=7)
        first = evaluate_policy(env, oracle, protocol)
        second = evaluate_policy(env, oracle, protocol)
        assert first.failures == second.failures
        assert first.unsafe_steps == second.unsafe_steps

    def test_steady_state_detection(self):
        env = make_satellite()
        rng = np.random.default_rng(0)
        episode = run_episode(env, lambda s: np.array([-2.0 * s[0] - 3.0 * s[1]]), steps=400, rng=rng)
        assert episode.steps_to_steady is not None
        assert episode.steps_to_steady < 400

    def test_paper_protocol_constants(self):
        protocol = EvaluationProtocol.paper()
        assert protocol.episodes == 1000 and protocol.steps == 5000


class TestExperimentInfrastructure:
    def test_scales_are_ordered(self):
        smoke, medium, paper = (
            ExperimentScale.smoke(),
            ExperimentScale.medium(),
            ExperimentScale.paper(),
        )
        assert smoke.episodes < medium.episodes < paper.episodes
        assert smoke.steps < medium.steps <= paper.steps

    def test_cegis_config_builder(self):
        scale = ExperimentScale.smoke()
        config = scale.cegis_config(backend="barrier", invariant_degree=4)
        assert config.verification.backend == "barrier"
        assert config.verification.invariant_degree == 4
        assert config.synthesis.iterations == scale.synthesis_iterations

    def test_format_table(self):
        rows = [{"name": "a", "value": 1.2345}, {"name": "b", "value": 2}]
        text = format_table(rows)
        assert "name" in text and "a" in text and "b" in text
        assert format_table([]) == "(no rows)"
