"""Tests for the policy-language parser (repro.lang.parser)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (
    AffineProgram,
    ExprProgram,
    GuardedProgram,
    Invariant,
    ParseError,
    TrueInvariant,
    parse_expression,
    parse_invariant,
    parse_program,
)
from repro.lang.parser import expression_to_polynomial
from repro.polynomials import Polynomial, monomial_basis


# ------------------------------------------------------------------- expressions
class TestParseExpression:
    def test_constant(self):
        expr = parse_expression("3.5")
        assert expr.evaluate([0.0]) == pytest.approx(3.5)

    def test_negative_constant(self):
        expr = parse_expression("-2")
        assert expr.evaluate([0.0]) == pytest.approx(-2.0)

    def test_scientific_notation(self):
        expr = parse_expression("1.5e-3")
        assert expr.evaluate([0.0]) == pytest.approx(1.5e-3)

    def test_variable_by_name(self):
        expr = parse_expression("eta", names=["eta", "omega"])
        assert expr.evaluate([4.0, 7.0]) == pytest.approx(4.0)

    def test_variable_positional(self):
        expr = parse_expression("x1")
        assert expr.evaluate([0.0, 9.0]) == pytest.approx(9.0)

    def test_unknown_variable_raises(self):
        with pytest.raises(ParseError, match="unknown variable"):
            parse_expression("theta", names=["eta", "omega"])

    def test_addition_and_subtraction(self):
        expr = parse_expression("x0 + 2*x1 - 3", names=["x0", "x1"])
        assert expr.evaluate([1.0, 2.0]) == pytest.approx(1 + 4 - 3)

    def test_multiplication_precedence(self):
        expr = parse_expression("2 + 3 * 4")
        assert expr.evaluate([0.0]) == pytest.approx(14.0)

    def test_parentheses(self):
        expr = parse_expression("(2 + 3) * 4")
        assert expr.evaluate([0.0]) == pytest.approx(20.0)

    def test_power(self):
        expr = parse_expression("x0^3", names=["x0"])
        assert expr.evaluate([2.0]) == pytest.approx(8.0)

    def test_power_zero(self):
        expr = parse_expression("x0^0", names=["x0"])
        assert expr.evaluate([5.0]) == pytest.approx(1.0)

    def test_mixed_monomial(self):
        expr = parse_expression("2*x0^2*x1 - x1^3", names=["x0", "x1"])
        assert expr.evaluate([2.0, 3.0]) == pytest.approx(2 * 4 * 3 - 27)

    def test_unary_minus_on_expression(self):
        expr = parse_expression("-(x0 + 1)", names=["x0"])
        assert expr.evaluate([4.0]) == pytest.approx(-5.0)

    def test_double_unary(self):
        expr = parse_expression("--3")
        assert expr.evaluate([0.0]) == pytest.approx(3.0)

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_expression("x0 + 1 )", names=["x0"])

    def test_empty_raises(self):
        with pytest.raises(ParseError):
            parse_expression("", names=["x0"])

    def test_bad_character_raises(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_expression("x0 $ 1", names=["x0"])

    def test_fractional_exponent_raises(self):
        with pytest.raises(ParseError, match="non-negative integers"):
            parse_expression("x0^1.5", names=["x0"])

    def test_lowering_to_polynomial(self):
        expr = parse_expression("x0^2 + 2*x0*x1 + x1^2", names=["x0", "x1"])
        poly = expression_to_polynomial(expr, names=["x0", "x1"])
        expected = (Polynomial.variable(0, 2) + Polynomial.variable(1, 2)) ** 2
        assert poly == expected


class TestExpressionRoundTrip:
    """parse(pretty(e)) must agree with e pointwise."""

    def test_affine_program_pretty_round_trip(self):
        program = AffineProgram(gain=[[-12.05, -5.87]], names=("eta", "omega"))
        text = program.pretty()
        body = text[len("return "):]
        expr = parse_expression(body, names=["eta", "omega"])
        for point in ([0.3, -0.2], [1.0, 1.0], [-2.0, 0.5]):
            assert expr.evaluate(point) == pytest.approx(program.act(point)[0], rel=1e-5)

    def test_polynomial_format_round_trip(self):
        rng = np.random.default_rng(3)
        basis = monomial_basis(2, 3)
        coeffs = rng.normal(size=len(basis))
        poly = Polynomial.from_coefficients(coeffs, basis, 2)
        expr = parse_expression(poly.format(["x0", "x1"], precision=12), names=["x0", "x1"])
        for point in rng.uniform(-2, 2, size=(20, 2)):
            assert expr.evaluate(point) == pytest.approx(poly.evaluate(point), rel=1e-6, abs=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(
        coeffs=st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=3, max_size=3
        )
    )
    def test_property_affine_round_trip(self, coeffs):
        poly = Polynomial.affine(coeffs[:2], coeffs[2], 2)
        text = poly.format(["a", "b"], precision=17)
        expr = parse_expression(text, names=["a", "b"])
        for point in ([0.0, 0.0], [1.0, -1.0], [0.5, 2.0]):
            assert expr.evaluate(point) == pytest.approx(poly.evaluate(point), abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_property_polynomial_round_trip(self, data):
        basis = monomial_basis(2, 3)
        coeffs = [
            data.draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
            for _ in basis
        ]
        poly = Polynomial.from_coefficients(coeffs, basis, 2)
        expr = parse_expression(poly.format(precision=17), names=None)
        point = [
            data.draw(st.floats(min_value=-1.5, max_value=1.5, allow_nan=False))
            for _ in range(2)
        ]
        value = poly.evaluate(point)
        assert expr.evaluate(point) == pytest.approx(value, rel=1e-6, abs=1e-6)


# --------------------------------------------------------------------- invariants
class TestParseInvariant:
    def test_simple_invariant(self):
        invariant = parse_invariant("x0^2 + x1^2 - 1 <= 0", names=["x0", "x1"])
        assert isinstance(invariant, Invariant)
        assert invariant.holds([0.5, 0.5])
        assert not invariant.holds([1.5, 0.0])

    def test_margin_on_rhs(self):
        invariant = parse_invariant("x0^2 <= 4", names=["x0"])
        assert invariant.holds([1.9])
        assert not invariant.holds([2.1])

    def test_true_invariant(self):
        invariant = parse_invariant("true", names=["x0", "x1"])
        assert isinstance(invariant, TrueInvariant)
        assert invariant.holds([1e9, -1e9])

    def test_missing_le_raises(self):
        with pytest.raises(ParseError, match="<="):
            parse_invariant("x0^2 + 1", names=["x0"])

    def test_nonconstant_rhs_raises(self):
        with pytest.raises(ParseError, match="constant"):
            parse_invariant("x0 <= x1", names=["x0", "x1"])

    def test_round_trip_through_pretty(self):
        barrier = Polynomial.from_coefficients(
            [2.0, -1.0, 0.5, -3.0], monomial_basis(2, 1) + [monomial_basis(2, 2)[-1]], 2
        )
        original = Invariant(barrier=barrier, names=("eta", "omega"))
        parsed = parse_invariant(original.pretty(), names=["eta", "omega"])
        for point in ([0.1, 0.2], [1.0, -1.0], [-0.5, 0.7]):
            assert parsed.holds(point) == original.holds(point)

    def test_num_vars_override(self):
        invariant = parse_invariant("x0 - 1 <= 0", names=None, num_vars=3)
        assert invariant.barrier.num_vars == 3


# ----------------------------------------------------------------------- programs
class TestParseProgram:
    def test_bare_return(self):
        program = parse_program("return 2*x0 - x1", names=["x0", "x1"])
        assert isinstance(program, ExprProgram)
        assert program.act([1.0, 1.0])[0] == pytest.approx(1.0)

    def test_multi_output_return(self):
        program = parse_program("return (x0 + x1, x0 - x1)", names=["x0", "x1"])
        action = program.act([3.0, 1.0])
        assert action.shape == (2,)
        assert action[0] == pytest.approx(4.0)
        assert action[1] == pytest.approx(2.0)

    def test_guarded_program(self):
        text = "\n".join(
            [
                "def P(x, y):",
                "    if x^2 + y^2 - 1 <= 0:",
                "        return 0.39*x - 1.41*y",
                "    elif x^2 + y^2 - 4 <= 0:",
                "        return 0.88*x - 2.34*y",
                "    else: abort",
            ]
        )
        program = parse_program(text)
        assert isinstance(program, GuardedProgram)
        assert len(program.branches) == 2
        inner = program.act([0.1, 0.1])
        assert inner[0] == pytest.approx(0.39 * 0.1 - 1.41 * 0.1)
        outer = program.act([1.5, 0.0])
        assert outer[0] == pytest.approx(0.88 * 1.5)

    def test_guarded_program_with_else_return(self):
        text = "\n".join(
            [
                "def P(x):",
                "    if x - 1 <= 0:",
                "        return 2*x",
                "    else:",
                "        return 0",
            ]
        )
        program = parse_program(text)
        assert isinstance(program, GuardedProgram)
        assert program.fallback is not None
        assert program.act([5.0])[0] == pytest.approx(0.0)

    def test_comments_are_ignored(self):
        text = "\n".join(
            [
                "def P(x):  # synthesized",
                "    if x - 1 <= 0:  # phi_1",
                "        return 3*x",
                "    else: abort  # unreachable from S0 (Theorem 4.2)",
            ]
        )
        program = parse_program(text)
        assert program.act([0.5])[0] == pytest.approx(1.5)

    def test_round_trip_guarded_pretty(self):
        barrier = Polynomial.from_coefficients([1.0, 1.0, -1.0], monomial_basis(2, 2)[3:5] + [monomial_basis(2, 0)[0]], 2)
        inner = AffineProgram(gain=[[0.39, -1.41]], names=("x", "y"))
        outer = AffineProgram(gain=[[0.88, -2.34]], names=("x", "y"))
        original = GuardedProgram(
            branches=[
                (Invariant(barrier=barrier, names=("x", "y")), inner),
                (Invariant(barrier=barrier - 3.0, names=("x", "y")), outer),
            ],
            names=("x", "y"),
        )
        parsed = parse_program(original.pretty(("x", "y")))
        rng = np.random.default_rng(0)
        for point in rng.uniform(-1.5, 1.5, size=(25, 2)):
            expected_index = original.branch_index(point)
            assert parsed.branch_index(point) == expected_index
            if expected_index >= 0:
                np.testing.assert_allclose(
                    parsed.act(point), original.act(point), rtol=1e-5, atol=1e-8
                )

    def test_empty_program_raises(self):
        with pytest.raises(ParseError, match="empty"):
            parse_program("   \n  ")

    def test_bad_header_raises(self):
        with pytest.raises(ParseError, match="def"):
            parse_program("lambda x: x")

    def test_guard_without_body_raises(self):
        with pytest.raises(ParseError, match="body"):
            parse_program("def P(x):\n    if x <= 0:")

    def test_missing_colon_raises(self):
        with pytest.raises(ParseError, match="':'"):
            parse_program("def P(x):\n    if x <= 0\n        return x")

    def test_unexpected_body_line_raises(self):
        with pytest.raises(ParseError, match="unexpected line"):
            parse_program("def P(x):\n    while x <= 0:\n        return x")


class TestParserOnSynthesizedOutput:
    """The paper's §5 pendulum program text parses and behaves as printed."""

    PENDULUM_TEXT = "\n".join(
        [
            "def P(eta, omega):",
            "    if 1928*eta^2 + 1915*eta*omega + 1104*omega^2 - 313 <= 0:",
            "        return -17.28176866*eta - 10.09441768*omega",
            "    elif 484*eta^2 + 170*eta*omega + 287*omega^2 - 82 <= 0:",
            "        return -17.34281984*eta - 10.73944835*omega",
            "    else: abort",
        ]
    )

    def test_parses(self):
        program = parse_program(self.PENDULUM_TEXT)
        assert isinstance(program, GuardedProgram)
        assert len(program.branches) == 2

    def test_first_branch_action(self):
        program = parse_program(self.PENDULUM_TEXT)
        action = program.act([0.01, 0.0])
        assert action[0] == pytest.approx(-17.28176866 * 0.01)

    def test_abort_is_lenient_by_default(self):
        program = parse_program(self.PENDULUM_TEXT)
        # Far outside both invariants: the lenient GuardedProgram still returns
        # an action (nearest-branch fallback), it does not raise.
        action = program.act([100.0, 100.0])
        assert np.isfinite(action).all()
