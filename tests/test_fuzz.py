"""The differential fuzzer: determinism, shrinking, reproducers, and teeth.

The campaign smoke here runs every property family on a fixed seed and must
stay green — a divergence means an equivalence claim in the codebase broke.
The non-vacuity tests re-implement the *pre-fix* behavior of bugs this fuzzer
found (fold annihilation, nan-dropping deserialization, signed-zero
fingerprint splits) and check the committed corpus reproducers still catch
those legacy semantics — proving the corpus guards against regressions rather
than passing trivially.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.compile import interpreted
from repro.fuzz import (
    FAMILIES,
    case_rng,
    load_reproducer,
    replay_reproducer,
    run_fuzz,
    shrink_case,
)
from repro.fuzz import generators as gen
from repro.fuzz.properties import _shrink_fold, _values_agree
from repro.fuzz.runner import Divergence, save_reproducer
from repro.lang import Const, Mul, Var
from repro.lang.simplify import fold_constants

FUZZ_CORPUS = Path(__file__).parent / "data" / "counterexamples" / "fuzz"


# ------------------------------------------------------------------ campaign
def test_smoke_campaign_all_families_hold():
    report = run_fuzz(seed=2026, rounds=2)
    assert report.ok, "\n".join(d.describe() for d in report.divergences)
    assert set(report.executed) == set(FAMILIES)
    for name, family in FAMILIES.items():
        assert report.executed[name] == 2 * family.weight
    assert report.total_cases == 2 * sum(f.weight for f in FAMILIES.values())


def test_unknown_property_rejected():
    with pytest.raises(ValueError, match="unknown property family"):
        run_fuzz(seed=0, rounds=1, properties=["nonsense"])


def test_time_budget_stops_between_rounds():
    report = run_fuzz(
        seed=0, rounds=10_000, properties=["fold"], time_budget=0.0
    )
    assert report.stopped_early
    assert report.total_cases == 0


# --------------------------------------------------------------- determinism
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_generators_are_deterministic(family):
    payloads = [
        FAMILIES[family].generate(case_rng(17, family, index)) for index in range(3)
    ]
    replays = [
        FAMILIES[family].generate(case_rng(17, family, index)) for index in range(3)
    ]
    assert json.dumps(payloads, sort_keys=True) == json.dumps(replays, sort_keys=True)
    # distinct indices must not generate the same case
    assert json.dumps(payloads[0], sort_keys=True) != json.dumps(
        payloads[1], sort_keys=True
    )


def test_case_rng_separates_families():
    fold = gen.expr_to_payload(gen.random_expr(case_rng(5, "fold", 0), 2))
    serialize = gen.expr_to_payload(gen.random_expr(case_rng(5, "serialize", 0), 2))
    assert fold != serialize


def test_payload_float_encoding_round_trips():
    values = [1.5, -0.0, float("inf"), float("-inf"), float("nan")]
    decoded = gen.dec_values(gen.enc_values(values))
    assert decoded[0] == 1.5
    assert decoded[1] == 0.0 and math.copysign(1.0, decoded[1]) < 0
    assert decoded[2] == float("inf") and decoded[3] == float("-inf")
    assert math.isnan(decoded[4])
    assert json.dumps(gen.enc_values(values))  # JSON-safe, no ValueError


# ------------------------------------------------------------------ shrinker
def _legacy_annihilating_fold(expr):
    """The pre-fix fold semantics: any zero factor collapses the product."""
    if isinstance(expr, (Const, Var)):
        return expr
    operands = tuple(_legacy_annihilating_fold(op) for op in expr.operands)
    if isinstance(expr, Mul) and any(
        isinstance(op, Const) and op.value == 0.0 for op in operands
    ):
        return Const(0.0)
    return type(expr)(operands)


def _legacy_fold_check(payload):
    expr = gen.expr_from_payload(payload["expr"])
    folded = _legacy_annihilating_fold(fold_constants(expr))
    with interpreted():
        for state in (gen.dec_values(s) for s in payload["states"]):
            raw = expr.evaluate(state)
            via = folded.evaluate(state)
            if not _values_agree(raw, via, rel=1e-9, abs_tol=1e-12):
                return f"legacy fold diverges at {state}: raw={raw!r} folded={via!r}"
    return None


def _first_legacy_fold_failure():
    for index in range(500):
        payload = FAMILIES["fold"].generate(case_rng(0, "fold", index))
        if _legacy_fold_check(payload):
            return payload
    raise AssertionError("generator never hits the legacy fold bug in 500 cases")


def test_shrinker_is_minimal_and_deterministic():
    payload = _first_legacy_fold_failure()
    runs = [
        shrink_case(payload, _legacy_fold_check, _shrink_fold) for _ in range(2)
    ]
    (small_a, msg_a, _), (small_b, msg_b, _) = runs
    assert json.dumps(small_a, sort_keys=True) == json.dumps(small_b, sort_keys=True)
    assert msg_a == msg_b
    # minimal: one state, and an expression no shrink candidate can reduce
    # while keeping the divergence alive
    assert len(small_a["states"]) == 1
    for candidate in _shrink_fold(small_a):
        assert _legacy_fold_check(candidate) is None


def test_shrinker_requires_a_failing_payload():
    payload = FAMILIES["fold"].generate(case_rng(0, "fold", 0))
    assert FAMILIES["fold"].check(payload) is None
    with pytest.raises(ValueError, match="failing payload"):
        shrink_case(payload, FAMILIES["fold"].check, _shrink_fold)


# ---------------------------------------------------------------- reproducers
def test_reproducer_round_trip(tmp_path):
    divergence = Divergence(
        family="fold",
        seed=3,
        index=7,
        message="synthetic",
        payload={"expr": {"kind": "var", "index": 0}, "num_vars": 1, "states": [[1.0]]},
        shrunk=True,
        shrink_checks=5,
    )
    path = save_reproducer(divergence, tmp_path)
    data = load_reproducer(path)
    assert data["property"] == "fold"
    assert data["payload"] == divergence.payload
    assert replay_reproducer(path) is None  # Var(0) trivially folds faithfully


def test_load_reproducer_rejects_foreign_json(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ValueError, match="not a fuzz reproducer"):
        load_reproducer(path)


def test_corpus_fold_reproducer_catches_legacy_annihilation():
    """Non-vacuity: the committed fold reproducer fails under the pre-fix
    annihilating fold, so it guards the semantics this fuzzer fixed."""
    path = FUZZ_CORPUS / "fold-seed0-case27.json"
    data = load_reproducer(path)
    assert _legacy_fold_check(data["payload"]) is not None
    assert replay_reproducer(path) is None


def test_corpus_nan_drop_reproducer_catches_legacy_deserialization():
    """Non-vacuity: pre-fix deserialization let ``Polynomial`` silently drop
    nan coefficients, so the poisoned program round-tripped with no error."""
    from repro.polynomials import Monomial, Polynomial

    data = load_reproducer(FUZZ_CORPUS / "serialize-seed0-case12.json")
    outputs = data["payload"]["program"]["outputs"]
    coeffs = [gen.dec_float(c) for out in outputs for _, c in out["terms"]]
    assert any(math.isnan(c) for c in coeffs)
    legacy = Polynomial(
        int(outputs[0]["num_vars"]),
        {
            Monomial(tuple(int(e) for e in ex)): gen.dec_float(c)
            for ex, c in outputs[0]["terms"]
        },
    )
    assert not legacy.terms, "pre-fix constructor drops the nan term silently"
    from repro.lang.serialize import ArtifactError, polynomial_from_dict

    with pytest.raises(ArtifactError):
        polynomial_from_dict(
            {"num_vars": outputs[0]["num_vars"],
             "terms": [[ex, gen.dec_float(c)] for ex, c in outputs[0]["terms"]]}
        )


def test_corpus_negzero_reproducer_catches_legacy_fingerprint():
    """Non-vacuity: hashing the raw (unnormalized) dicts splits the signed-zero
    twins the fixed ``program_fingerprint`` identifies."""
    import hashlib

    from repro.fuzz.properties import _flip_zero_signs

    data = load_reproducer(FUZZ_CORPUS / "serialize-seed0-case3.json")
    program_dict = data["payload"]["program"]
    twin_dict = _flip_zero_signs(program_dict)

    def legacy_digest(d):
        return hashlib.sha256(json.dumps(d, sort_keys=True).encode()).hexdigest()

    assert legacy_digest(program_dict) != legacy_digest(twin_dict)
    assert replay_reproducer(FUZZ_CORPUS / "serialize-seed0-case3.json") is None


# ----------------------------------------------------------------------- CLI
def test_cli_fuzz_smoke(capsys):
    from repro.cli import main

    code = main(
        ["fuzz", "--seed", "11", "--rounds", "1", "--properties", "fold", "serialize"]
    )
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["divergences"] == 0
    assert summary["per_family"] == {"fold": 4, "serialize": 4}


def test_cli_fuzz_list_properties(capsys):
    from repro.cli import main

    assert main(["fuzz", "--list-properties"]) == 0
    out = capsys.readouterr().out
    for name in FAMILIES:
        assert name in out


def test_cli_fuzz_persists_reproducer_and_fails(tmp_path, monkeypatch, capsys):
    """A divergence must exit non-zero and leave a replayable corpus entry."""
    from repro import cli as cli_module
    from repro.fuzz.properties import PropertyFamily

    def broken_check(payload):
        return "always diverges"

    broken = dict(FAMILIES)
    broken["fold"] = PropertyFamily(
        name="fold",
        description=FAMILIES["fold"].description,
        weight=1,
        generate=FAMILIES["fold"].generate,
        check=broken_check,
        shrink_candidates=_shrink_fold,
    )
    monkeypatch.setattr("repro.fuzz.runner.FAMILIES", broken)

    code = cli_module.main(
        [
            "fuzz",
            "--seed", "0",
            "--rounds", "1",
            "--properties", "fold",
            "--no-shrink",
            "--corpus", str(tmp_path),
        ]
    )
    assert code == 1
    saved = sorted(tmp_path.glob("*.json"))
    assert saved, "divergence must persist a reproducer"
    data = json.loads(saved[0].read_text())
    assert data["kind"] == "fuzz-reproducer"
    assert data["message"] == "always diverges"


# ----------------------------------------------------------- env generators
def test_fuzz_env_round_trips_and_steps():
    rng = case_rng(0, "compiled", 0)
    payload = gen.random_env_payload(rng)
    env = gen.env_from_payload(payload)
    state = np.asarray(
        env.init_region.sample(np.random.default_rng(0), 1)[0], dtype=float
    )
    nxt = env.step(state, np.zeros(env.action_dim))
    assert np.all(np.isfinite(nxt))
    again = gen.env_from_payload(payload)
    assert np.array_equal(nxt, again.step(state, np.zeros(env.action_dim)))
