"""Tests for the reinforcement-learning substrate (networks, replay, DDPG, ARS, oracles)."""

import numpy as np
import pytest

from repro.baselines import linearize, lqr_gain, make_lqr_policy
from repro.envs import make_environment, make_pendulum, make_quadcopter, make_satellite
from repro.rl import (
    MLP,
    AdamOptimizer,
    ARSConfig,
    ARSTrainer,
    CallablePolicy,
    DDPGConfig,
    DDPGTrainer,
    LinearPolicy,
    NeuralPolicy,
    ReplayBuffer,
    behaviour_clone,
    train_linear_policy,
    train_oracle,
)


# ---------------------------------------------------------------------- networks
class TestMLP:
    def test_output_shape(self):
        net = MLP(3, (8, 8), 2, seed=0)
        assert net(np.zeros(3)).shape == (2,)
        assert net(np.zeros((5, 3))).shape == (5, 2)

    def test_output_scale_bounds_actions(self):
        net = MLP(2, (8,), 1, output_scale=np.array([2.0]), seed=0)
        outputs = net(np.random.default_rng(0).normal(scale=100.0, size=(50, 2)))
        assert np.all(np.abs(outputs) <= 2.0 + 1e-9)

    def test_parameter_roundtrip(self):
        net = MLP(2, (4,), 1, seed=0)
        params = net.get_parameters()
        clone = net.copy()
        clone.set_parameters(params * 0.0)
        assert not np.allclose(clone.get_parameters(), params)
        clone.set_parameters(params)
        np.testing.assert_allclose(clone.get_parameters(), params)

    def test_set_parameters_wrong_size(self):
        net = MLP(2, (4,), 1)
        with pytest.raises(ValueError):
            net.set_parameters(np.zeros(3))

    def test_gradient_check_against_finite_differences(self):
        """Backprop gradients must match numerical gradients of a squared loss."""
        rng = np.random.default_rng(0)
        net = MLP(2, (5,), 1, seed=1)
        inputs = rng.normal(size=(4, 2))
        targets = rng.normal(size=(4, 1))

        def loss_for(params):
            clone = net.copy()
            clone.set_parameters(params)
            outputs, _ = clone.forward(inputs)
            return float(np.sum((outputs - targets) ** 2))

        outputs, cache = net.forward(inputs)
        weight_grads, bias_grads, _ = net.backward(cache, 2.0 * (outputs - targets))
        analytic = np.concatenate(
            [g.ravel() for g in weight_grads] + [g.ravel() for g in bias_grads]
        )
        params = net.get_parameters()
        numeric = np.zeros_like(params)
        epsilon = 1e-6
        for i in range(params.size):
            up = params.copy()
            up[i] += epsilon
            down = params.copy()
            down[i] -= epsilon
            numeric[i] = (loss_for(up) - loss_for(down)) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP(2, (4,), 1, hidden_activation="sigmoidish")

    def test_adam_reduces_quadratic_loss(self):
        rng = np.random.default_rng(0)
        target = rng.normal(size=(3, 3))
        param = np.zeros((3, 3))
        optimizer = AdamOptimizer(learning_rate=0.05)
        for _ in range(500):
            grad = 2.0 * (param - target)
            optimizer.update([param], [grad])
        np.testing.assert_allclose(param, target, atol=1e-2)


# ------------------------------------------------------------------------ replay
class TestReplayBuffer:
    def test_add_and_sample(self):
        buffer = ReplayBuffer(capacity=10, state_dim=2, action_dim=1)
        for i in range(5):
            buffer.add([i, i], [0.1], float(i), [i + 1, i + 1], False)
        assert len(buffer) == 5
        batch = buffer.sample(8)
        assert batch["states"].shape == (8, 2)
        assert batch["rewards"].shape == (8,)

    def test_capacity_wraps(self):
        buffer = ReplayBuffer(capacity=4, state_dim=1, action_dim=1)
        for i in range(10):
            buffer.add([i], [0.0], 0.0, [i], False)
        assert len(buffer) == 4

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=4, state_dim=1, action_dim=1).sample(1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0, state_dim=1, action_dim=1)


# ---------------------------------------------------------------------- policies
class TestPolicies:
    def test_linear_policy_clipping(self):
        policy = LinearPolicy(gain=np.array([[5.0, 0.0]]), action_low=[-1], action_high=[1])
        assert policy.act([10.0, 0.0])[0] == 1.0

    def test_neural_policy_dims(self):
        policy = NeuralPolicy(MLP(3, (4,), 2, seed=0))
        assert policy.state_dim == 3 and policy.action_dim == 2
        assert policy.act(np.zeros(3)).shape == (2,)
        assert policy.act_batch(np.zeros((7, 3))).shape == (7, 2)

    def test_callable_policy(self):
        policy = CallablePolicy(lambda s: -s[:1], state_dim=2, action_dim=1)
        np.testing.assert_allclose(policy.act([2.0, 5.0]), [-2.0])


# -------------------------------------------------------------------------- ARS
class TestARS:
    def test_optimises_simple_quadratic(self):
        target = np.array([1.0, -2.0, 0.5])

        def objective(theta):
            return -float(np.sum((theta - target) ** 2))

        trainer = ARSTrainer(objective, 3, ARSConfig(iterations=150, step_size=0.1, seed=0))
        result = trainer.train()
        np.testing.assert_allclose(result.parameters, target, atol=0.3)
        assert result.returns[-1] > result.returns[0]

    def test_train_linear_policy_improves_return(self):
        env = make_quadcopter()
        config = ARSConfig(iterations=10, directions=4, rollout_steps=80, seed=0)
        policy, result = train_linear_policy(env, config)
        assert policy.gain.shape == (1, 2)
        assert len(result.returns) == 10


# ------------------------------------------------------------------------- DDPG
class TestDDPG:
    def test_short_training_run_completes(self):
        env = make_quadcopter()
        config = DDPGConfig(
            hidden_sizes=(16, 16), episodes=3, steps_per_episode=60, warmup_steps=30, seed=0
        )
        policy, log = DDPGTrainer(env, config).train()
        assert len(log.episode_returns) == 3
        assert policy.act(np.zeros(2)).shape == (1,)
        assert np.all(np.abs(policy.act(np.array([0.5, -0.5]))) <= env.action_high + 1e-9)

    def test_replay_is_populated(self):
        env = make_quadcopter()
        trainer = DDPGTrainer(env, DDPGConfig(episodes=1, steps_per_episode=40, warmup_steps=10))
        trainer.train()
        assert len(trainer.buffer) > 0


# --------------------------------------------------------------------- baselines
class TestLQR:
    def test_lqr_stabilises_double_integrator(self):
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        b = np.array([[0.0], [1.0]])
        result = lqr_gain(a, b)
        closed = a - b @ result.gain
        assert np.all(np.real(np.linalg.eigvals(closed)) < 0)

    def test_linearize_matches_linear_env(self):
        env = make_satellite()
        a, b = linearize(env)
        a_true, b_true = env.linear_matrices()
        np.testing.assert_allclose(a, a_true)
        np.testing.assert_allclose(b, b_true)

    def test_linearize_nonlinear_env(self):
        env = make_pendulum()
        a, b = linearize(env)
        assert a.shape == (2, 2)
        assert a[1, 0] == pytest.approx(9.8 / env.length, rel=1e-3)

    def test_lqr_policy_keeps_satellite_safe(self):
        env = make_satellite()
        policy = make_lqr_policy(env)
        trajectory = env.simulate(policy, steps=400, rng=np.random.default_rng(0))
        assert trajectory.unsafe_steps == 0


# ----------------------------------------------------------------------- oracles
class TestOracleTraining:
    def test_behaviour_cloning_imitates_teacher(self):
        env = make_satellite()
        teacher = make_lqr_policy(env)
        student = behaviour_clone(env, teacher, hidden_sizes=(32, 24), samples=800, epochs=150)
        rng = np.random.default_rng(0)
        states = env.safe_box.sample(rng, 100)
        teacher_actions = np.stack([teacher(s) for s in states])
        student_actions = student.act_batch(states)
        error = np.mean(np.abs(teacher_actions - student_actions))
        scale = np.mean(np.abs(teacher_actions)) + 1e-6
        assert error / scale < 0.5

    def test_train_oracle_methods(self):
        env = make_quadcopter()
        cloned = train_oracle(env, method="cloned", hidden_sizes=(16, 16), seed=0)
        assert cloned.method == "cloned"
        assert cloned.training_seconds > 0
        with pytest.raises(ValueError):
            train_oracle(env, method="unknown")

    def test_cloned_oracle_is_competent(self):
        env = make_pendulum(safe_angle_deg=90.0)
        oracle = train_oracle(env, method="cloned", hidden_sizes=(32, 24), seed=0).policy
        trajectory = env.simulate(oracle, steps=400, rng=np.random.default_rng(1))
        assert trajectory.unsafe_steps == 0
        assert np.max(np.abs(trajectory.states[-1])) < 0.2
