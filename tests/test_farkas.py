"""Tests for the Handelman/Farkas LP prover (repro.certificates.farkas)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certificates import Box, FarkasVerifier
from repro.certificates.farkas import (
    handelman_products,
    prove_nonpositive_handelman,
    prove_positive_handelman,
)
from repro.polynomials import Polynomial


def _poly(text_coeffs, num_vars=1):
    """Small helper: build a univariate/bivariate polynomial from affine coeffs."""
    return Polynomial.affine(text_coeffs[:num_vars], text_coeffs[num_vars], num_vars)


class TestHandelmanProducts:
    def test_degree_zero_contains_only_constant(self):
        box = Box((-1.0,), (1.0,))
        products = handelman_products(box, 0)
        assert len(products) == 1
        assert products[0].evaluate([0.3]) == pytest.approx(1.0)

    def test_degree_one_counts(self):
        box = Box((-1.0, -2.0), (1.0, 2.0))
        products = handelman_products(box, 1)
        # constant + 2n generators
        assert len(products) == 1 + 4

    def test_degree_two_counts(self):
        box = Box((-1.0,), (1.0,))
        # generators: (x+1), (1-x); degree-2 products: 1, 2 singles, 3 pairs.
        products = handelman_products(box, 2)
        assert len(products) == 1 + 2 + 3

    def test_constraint_generators_included(self):
        box = Box((-1.0,), (1.0,))
        constraint = Polynomial.variable(0, 1)  # x <= 0
        products = handelman_products(box, 1, constraints=[constraint])
        assert len(products) == 1 + 3
        # The extra generator is -x, nonnegative where the constraint holds.
        assert products[-1].evaluate([-0.5]) == pytest.approx(0.5)

    def test_generators_nonnegative_on_box(self):
        box = Box((-2.0, 0.5), (3.0, 1.5))
        products = handelman_products(box, 2)
        rng = np.random.default_rng(0)
        points = box.sample(rng, 50)
        for product in products:
            values = product.evaluate_batch(points)
            assert np.all(values >= -1e-9)

    def test_negative_degree_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            handelman_products(Box((-1.0,), (1.0,)), -1)


class TestProveNonpositive:
    def test_proves_affine_bound(self):
        # x - 2 <= 0 on [-1, 1].
        poly = _poly([1.0, -2.0])
        result = prove_nonpositive_handelman(poly, Box((-1.0,), (1.0,)), degree=1)
        assert result.proved
        assert result.residual_bound <= 1e-7
        assert np.all(result.multipliers >= -1e-12)

    def test_proves_concave_quadratic(self):
        # x^2 - 1 <= 0 on [-1, 1]: 1 - x^2 = (1-x)(1+x) is a product generator.
        x = Polynomial.variable(0, 1)
        poly = x * x - 1.0
        result = prove_nonpositive_handelman(poly, Box((-1.0,), (1.0,)), degree=2)
        assert result.proved

    def test_rejects_false_statement(self):
        # x - 0.5 <= 0 is false on [0, 1].
        poly = _poly([1.0, -0.5])
        result = prove_nonpositive_handelman(poly, Box((0.0,), (1.0,)), degree=2)
        assert not result.proved
        assert result.failure_reason

    def test_bivariate_level_set(self):
        # x^2 + y^2 - 2 <= 0 on the unit box.
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        poly = x * x + y * y - 2.0
        result = prove_nonpositive_handelman(poly, Box((-1.0, -1.0), (1.0, 1.0)), degree=2)
        assert result.proved

    def test_constraint_restricts_domain(self):
        # x <= 0.25 is false on [0, 1] but true on [0, 1] ∩ {x - 0.25 <= 0}... trivially;
        # use a non-trivial case: prove x*y <= 0.25 on the unit square given y <= 0.25.
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        box = Box((0.0, 0.0), (1.0, 1.0))
        unconstrained = prove_nonpositive_handelman(x * y - 0.25, box, degree=2)
        assert not unconstrained.proved
        constrained = prove_nonpositive_handelman(
            x * y - 0.25, box, degree=2, constraints=[y - 0.25]
        )
        assert constrained.proved

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimensions"):
            prove_nonpositive_handelman(Polynomial.variable(0, 2), Box((-1.0,), (1.0,)))

    def test_default_degree_follows_polynomial(self):
        x = Polynomial.variable(0, 1)
        result = prove_nonpositive_handelman((x * x * x) - 2.0, Box((-1.0,), (1.0,)))
        assert result.degree == 3

    @settings(max_examples=25, deadline=None)
    @given(
        bound=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        slope=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    )
    def test_property_affine_true_statements_are_proved(self, bound, slope):
        # slope*x - (|slope|*bound + 0.1) <= 0 always holds on [-bound, bound].
        offset = abs(slope) * bound + 0.1
        poly = Polynomial.affine([slope], -offset, 1)
        result = prove_nonpositive_handelman(poly, Box((-bound,), (bound,)), degree=1)
        assert result.proved

    @settings(max_examples=25, deadline=None)
    @given(
        gap=st.floats(min_value=0.05, max_value=2.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_soundness_never_proves_falsehoods(self, gap, seed):
        # p(x) = x - (1 - gap) is positive at x = 1, so "p <= 0 on [0, 1]" is false.
        rng = np.random.default_rng(seed)
        poly = Polynomial.affine([1.0], -(1.0 - gap), 1)
        if gap >= 1.0:
            return  # statement would actually be true; skip
        result = prove_nonpositive_handelman(poly, Box((0.0,), (1.0,)), degree=int(rng.integers(1, 4)))
        assert not result.proved


class TestProvePositive:
    def test_proves_strictly_positive(self):
        # 2 - x > 0 on [-1, 1].
        poly = Polynomial.affine([-1.0], 2.0, 1)
        result = prove_positive_handelman(poly, Box((-1.0,), (1.0,)), degree=1)
        assert result.proved

    def test_rejects_sign_changing(self):
        poly = Polynomial.variable(0, 1)
        result = prove_positive_handelman(poly, Box((-1.0,), (1.0,)), degree=2)
        assert not result.proved

    def test_barrier_positive_on_unsafe_box(self):
        # The paper's condition (8) shape: E = x^2 + y^2 - 1 > 0 on a far-away unsafe box.
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        barrier = x * x + y * y - 1.0
        unsafe = Box((2.0, -1.0), (3.0, 1.0))
        result = prove_positive_handelman(barrier, unsafe, degree=2)
        assert result.proved


class TestFarkasVerifier:
    def test_multi_box_query(self):
        verifier = FarkasVerifier(max_degree=2)
        x = Polynomial.variable(0, 1)
        poly = x * x - 4.0
        boxes = [Box((-1.0,), (1.0,)), Box((0.0,), (1.5,))]
        assert verifier.prove_nonpositive(poly, boxes).proved

    def test_multi_box_query_fails_on_bad_box(self):
        verifier = FarkasVerifier(max_degree=2)
        x = Polynomial.variable(0, 1)
        poly = x * x - 4.0
        boxes = [Box((-1.0,), (1.0,)), Box((0.0,), (3.0,))]
        assert not verifier.prove_nonpositive(poly, boxes).proved

    def test_prove_positive_multi_box(self):
        verifier = FarkasVerifier(max_degree=2)
        poly = Polynomial.affine([0.0], 1.0, 1)  # constant 1 > 0
        assert verifier.prove_positive(poly, [Box((-5.0,), (5.0,))]).proved

    def test_agrees_with_branch_and_bound(self):
        """Cross-check the two decision procedures on a batch of random affine queries."""
        from repro.certificates import BranchAndBoundVerifier

        rng = np.random.default_rng(7)
        bnb = BranchAndBoundVerifier(tolerance=1e-9)
        farkas = FarkasVerifier(max_degree=2, tolerance=1e-7)
        box = Box((-1.0, -1.0), (1.0, 1.0))
        agreements = 0
        for _ in range(20):
            coeffs = rng.uniform(-1, 1, size=2)
            offset = rng.uniform(-3, 3)
            poly = Polynomial.affine(coeffs, offset, 2)
            # Ground truth: max of an affine function over a box is at a corner.
            true_max = max(poly.evaluate(corner) for corner in box.corners())
            truth = true_max <= 0.0
            bnb_answer = bool(bnb.prove_nonpositive(poly, [box]).verified)
            farkas_answer = bool(farkas.prove_nonpositive(poly, [box]).proved)
            # Neither procedure may claim a proof of a false statement.
            if not truth:
                assert not bnb_answer
                assert not farkas_answer
            if bnb_answer == farkas_answer == truth:
                agreements += 1
        # Away from degenerate boundary cases both procedures should agree with
        # the ground truth almost always.
        assert agreements >= 16
