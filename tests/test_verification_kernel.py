"""The verification kernel: backend registry dispatch, capability-filtered
portfolio, the disturbance-aware barrier encoding, and the store-backed
verdict cache (hit accounting + bit-identical cache-on/off behaviour)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_lqr_policy
from repro.certificates import (
    BackendCapabilities,
    BarrierCertificateSynthesizer,
    Box,
    BranchAndBoundVerifier,
    available_backends,
    backend_names,
    register_backend,
)
from repro.certificates.backend import _REGISTRY, VerificationOutcome
from repro.core import (
    CEGISConfig,
    CEGISLoop,
    DistanceConfig,
    SynthesisConfig,
    VerificationConfig,
    verify_program,
)
from repro.envs import make_environment
from repro.lang import AffineProgram, InvariantSketch
from repro.store import ShieldStore, SynthesisService, VerdictCache, environment_fingerprint

DUFFING_BOX = Box([-0.5, -0.5], [0.5, 0.5])


def _satellite():
    env = make_environment("satellite")
    return env, AffineProgram(gain=make_lqr_policy(env).gain)


# ------------------------------------------------------------------- registry
class TestBackendRegistry:
    def test_registry_exposes_all_four_backends(self):
        assert {"lyapunov", "sos", "barrier", "farkas"} <= set(backend_names())
        ranks = [backend.capabilities.cost_rank for backend in available_backends()]
        assert ranks == sorted(ranks)  # cheapest-first ordering

    def test_config_accepts_every_registered_name(self):
        env, program = _satellite()
        for name in backend_names():
            outcome = verify_program(
                env, program, config=VerificationConfig(backend=name)
            )
            assert outcome.backend == name
            assert outcome.verified, (name, outcome.failure_reason)
            assert outcome.attempts == (name,)

    def test_auto_runs_the_portfolio(self):
        env, program = _satellite()
        outcome = verify_program(env, program)
        assert outcome.verified
        assert outcome.attempts  # provenance of the dispatch
        assert outcome.backend == outcome.attempts[-1]

    def test_unknown_backend_raises_with_available_list(self):
        env, program = _satellite()
        with pytest.raises(ValueError, match="farkas"):
            verify_program(env, program, config=VerificationConfig(backend="nonsense"))
        with pytest.raises(ValueError, match="sos"):
            verify_program(env, program, config=VerificationConfig(backend="nonsense"))

    def test_custom_backend_is_discoverable_by_name(self):
        class StubBackend:
            name = "stub-prover"
            capabilities = BackendCapabilities(cost_rank=99)

            def supports(self, env, program):
                return True

            def verify(self, env, program, init_box, config, recorder=None, deadline=None):
                return VerificationOutcome(
                    verified=False,
                    invariant=None,
                    backend=self.name,
                    wall_clock_seconds=0.0,
                    failure_reason="stub",
                )

        register_backend(StubBackend())
        try:
            env, program = _satellite()
            outcome = verify_program(
                env, program, config=VerificationConfig(backend="stub-prover")
            )
            assert outcome.backend == "stub-prover"
            assert outcome.failure_reason == "stub"
            with pytest.raises(ValueError, match="already registered"):
                register_backend(StubBackend())
        finally:
            _REGISTRY.pop("stub-prover", None)

    def test_explicit_portfolio_order_is_respected(self):
        env, program = _satellite()
        outcome = verify_program(
            env, program, config=VerificationConfig(portfolio=("barrier",))
        )
        assert outcome.attempts == ("barrier",)
        assert outcome.verified

    def test_explicit_portfolio_bypasses_capability_filter(self):
        # An explicitly selected backend always runs, even when it cannot
        # structurally support the query — it reports its own reason instead
        # of being silently dropped by the auto filter.
        env = make_environment("duffing")
        program = AffineProgram(gain=np.array([[-1.0, -1.5]]))
        outcome = verify_program(
            env, program, init_box=DUFFING_BOX,
            config=VerificationConfig(portfolio=("lyapunov",)),
        )
        assert outcome.attempts == ("lyapunov",)
        assert not outcome.verified
        assert "linear" in outcome.failure_reason


# -------------------------------------------------------- capability filtering
class TestCapabilityFiltering:
    def test_nonlinear_env_skips_linear_only_backends(self):
        env = make_environment("duffing")
        program = AffineProgram(gain=np.array([[-1.0, -1.5]]))
        outcome = verify_program(env, program, init_box=DUFFING_BOX)
        assert outcome.verified
        assert "lyapunov" not in outcome.attempts
        assert "sos" not in outcome.attempts
        assert outcome.backend == "barrier"

    def test_redundant_backends_are_pruned_after_failure(self):
        # A destabilising program fails lyapunov; sos (same quadratic search)
        # must then be pruned from the auto portfolio.
        env = make_environment("satellite")
        bad = AffineProgram(gain=np.array([[5.0, 5.0]]))
        outcome = verify_program(env, bad)
        assert not outcome.verified
        assert "lyapunov" in outcome.attempts
        assert "sos" not in outcome.attempts

    def test_disturbance_blind_backend_filtered_on_disturbed_env(self):
        class BlindBackend:
            name = "blind-stub"
            capabilities = BackendCapabilities(
                handles_polynomial=True, disturbance_aware=False, cost_rank=-1
            )

            def supports(self, env, program):
                return True

            def verify(self, env, program, init_box, config, recorder=None, deadline=None):
                return VerificationOutcome(True, None, self.name, 0.0)

        register_backend(BlindBackend())
        try:
            program = AffineProgram(gain=np.array([[-0.5, -0.5]]))
            clean = make_environment("satellite")
            disturbed = make_environment("satellite", disturbance_bound=[0.01, 0.01])
            # Cheapest backend on the undisturbed env: the stub wins.
            assert verify_program(clean, program).backend == "blind-stub"
            # On the disturbed env the capability filter removes it.
            outcome = verify_program(disturbed, program)
            assert "blind-stub" not in outcome.attempts
            assert outcome.disturbance_aware
            # An explicit selection still runs it, but provenance says blind.
            explicit = verify_program(
                disturbed, program, config=VerificationConfig(backend="blind-stub")
            )
            assert explicit.backend == "blind-stub"
            assert not explicit.disturbance_aware
        finally:
            _REGISTRY.pop("blind-stub", None)

    def test_no_eligible_backend_reports_structured_failure(self):
        class OpaquePolicy:  # no to_polynomials, no gain: nothing supports it
            def act(self, state):
                return np.zeros(1)

        env = make_environment("duffing")
        outcome = verify_program(env, OpaquePolicy())
        assert not outcome.verified
        assert outcome.backend == "none"
        assert "no capability-eligible backend" in outcome.failure_reason


# ------------------------------------------- disturbance-aware barrier verdicts
class TestDisturbanceAwareBarrier:
    def test_disturbed_nonlinear_registry_env_gets_aware_verdict(self):
        """Acceptance: barrier verification of a disturbed nonlinear registry
        environment returns a disturbance-aware verdict — no pinning, no flag."""
        env = make_environment("duffing", disturbance_bound=[0.05, 0.05])
        program = AffineProgram(gain=np.array([[-1.0, -1.5]]))
        outcome = verify_program(env, program, init_box=DUFFING_BOX)
        assert outcome.verified
        assert outcome.backend == "barrier"
        assert outcome.disturbance_aware

    def test_blind_lp_accepts_unsound_candidate_new_encoding_rejects(self):
        """Regression for the disturbance-blind barrier LP: the old encoding
        (no disturbance term) accepts a certificate that the disturbance-aware
        sound check refutes with a concrete condition-(10) witness."""
        env = make_environment("satellite")
        program = AffineProgram(gain=make_lqr_policy(env).gain)
        closed = env.closed_loop_polynomials(program)
        sketch = InvariantSketch(state_dim=2, degree=2, names=env.state_names)
        verifier = BranchAndBoundVerifier(
            tolerance=1e-6,
            max_boxes=120_000,
            min_width=float(np.max(env.domain.widths)) / 200.0,
        )
        common = dict(
            sketch=sketch,
            closed_loop=closed,
            init_box=env.init_region,
            unsafe_boxes=env.unsafe_cover_boxes(),
            safe_box=env.safe_box,
            domain_box=env.domain,
            verifier=verifier,
        )
        blind = BarrierCertificateSynthesizer(**common).search()
        assert blind.verified  # the old, disturbance-blind verdict

        from repro.certificates import BarrierSynthesisConfig

        aware = BarrierCertificateSynthesizer(
            **common,
            config=BarrierSynthesisConfig(max_refinements=2),
            disturbance_bound=[0.4, 0.4],
            disturbance_scale=env.dt,
        )
        # The blind certificate is not inductive once the worst-case
        # disturbance of condition (10) is modelled...
        failure = aware._sound_check(blind.invariant)
        assert failure is not None
        kind, witness = failure
        assert kind == "induction"
        assert witness.shape == (2,)  # projected back to state coordinates
        # ...and the new encoding refuses to certify the candidate sketch.
        assert not aware.search().verified

    def test_kernel_rejects_unsound_candidate_on_disturbed_env(self):
        env = make_environment("satellite", disturbance_bound=[0.4, 0.4])
        program = AffineProgram(gain=make_lqr_policy(env).gain)
        outcome = verify_program(
            env, program, config=VerificationConfig(backend="barrier")
        )
        assert not outcome.verified
        assert outcome.disturbance_aware

    def test_barrier_time_budget_is_sound(self):
        env = make_environment("duffing")
        program = AffineProgram(gain=np.array([[-1.0, -1.5]]))
        config = VerificationConfig(backend="barrier", invariant_degree=4)
        config.barrier.time_budget_seconds = 0.0
        outcome = verify_program(env, program, init_box=DUFFING_BOX, config=config)
        assert not outcome.verified
        assert "time budget" in outcome.failure_reason


# ----------------------------------------------------------------- verdict cache
class TestVerdictCache:
    def test_hit_returns_bit_identical_outcome_and_record_stream(self, tmp_path):
        env, program = _satellite()
        cache = VerdictCache(tmp_path / "verdicts")
        config = VerificationConfig(backend="barrier")
        fresh_records, cached_records = [], []
        fresh = verify_program(
            env,
            program,
            config=config,
            recorder=lambda kind, state: fresh_records.append((kind, tuple(state))),
            verdict_cache=cache,
        )
        cached = verify_program(
            env,
            program,
            config=config,
            recorder=lambda kind, state: cached_records.append((kind, tuple(state))),
            verdict_cache=cache,
        )
        assert cache.stats() == {"hits": 1, "misses": 1, "puts": 1}
        assert not fresh.from_cache and cached.from_cache
        assert cached.verified == fresh.verified
        assert cached.backend == fresh.backend
        assert cached.invariant == fresh.invariant
        assert cached.margin == fresh.margin
        assert cached.attempts == fresh.attempts
        assert cached_records == fresh_records  # recorder stream re-emitted

    def test_cache_on_off_outcomes_are_identical(self, tmp_path):
        env, program = _satellite()
        config = VerificationConfig(backend="barrier")
        plain = verify_program(env, program, config=config)
        cache = VerdictCache(tmp_path / "verdicts")
        first = verify_program(env, program, config=config, verdict_cache=cache)
        second = verify_program(env, program, config=config, verdict_cache=cache)
        for outcome in (first, second):
            assert outcome.verified == plain.verified
            assert outcome.backend == plain.backend
            assert outcome.invariant == plain.invariant
            assert outcome.margin == plain.margin

    def test_cache_persists_across_instances(self, tmp_path):
        env, program = _satellite()
        config = VerificationConfig(backend="lyapunov")
        verify_program(
            env, program, config=config, verdict_cache=VerdictCache(tmp_path / "v")
        )
        reopened = VerdictCache(tmp_path / "v")
        outcome = verify_program(env, program, config=config, verdict_cache=reopened)
        assert outcome.from_cache
        assert reopened.stats()["hits"] == 1
        assert len(reopened) == 1

    def test_environment_fingerprint_captures_dynamics(self):
        from repro.envs.cartpole import make_cartpole

        short = environment_fingerprint(make_cartpole(pole_length=0.5))
        long = environment_fingerprint(make_cartpole(pole_length=0.65))
        again = environment_fingerprint(make_cartpole(pole_length=0.5))
        assert short is not None and long is not None
        assert short != long  # same name/regions, different dynamics
        assert short == again

    def test_fingerprint_distinguishes_disturbance_bound(self):
        clean = environment_fingerprint(make_environment("satellite"))
        disturbed = environment_fingerprint(
            make_environment("satellite", disturbance_bound=[0.1, 0.1])
        )
        assert clean != disturbed

    def test_budget_limited_failures_are_not_cached(self, tmp_path):
        """A FAILED verdict produced under a wall-clock budget is not
        deterministic and must never poison the persistent cache."""
        env = make_environment("duffing")
        program = AffineProgram(gain=np.array([[-1.0, -1.5]]))
        cache = VerdictCache(tmp_path / "v")
        config = VerificationConfig(backend="barrier")
        config.barrier.time_budget_seconds = 0.0
        outcome = verify_program(
            env, program, init_box=DUFFING_BOX, config=config, verdict_cache=cache
        )
        assert not outcome.verified
        assert cache.puts == 0  # the budget failure was not memoised
        # The same query under the same (budgeted) config re-proves fresh.
        again = verify_program(
            env, program, init_box=DUFFING_BOX, config=config, verdict_cache=cache
        )
        assert not again.from_cache

    def test_corrupt_entry_is_a_miss_and_gets_repaired(self, tmp_path):
        env, program = _satellite()
        config = VerificationConfig(backend="lyapunov")
        cache = VerdictCache(tmp_path / "v")
        outcome = verify_program(env, program, config=config, verdict_cache=cache)
        path = cache._path_for(outcome.cache_key)
        path.write_text("{ truncated")  # simulate a torn write

        reopened = VerdictCache(tmp_path / "v")
        fresh = verify_program(env, program, config=config, verdict_cache=reopened)
        assert not fresh.from_cache  # corrupt entry counted as a miss...
        assert reopened.misses == 1
        repaired = verify_program(env, program, config=config, verdict_cache=reopened)
        assert repaired.from_cache  # ...and put() repaired the file
        assert VerdictCache(tmp_path / "v").get(outcome.cache_key) is not None

    def test_malformed_entry_payload_is_a_miss(self, tmp_path):
        import json

        env, program = _satellite()
        config = VerificationConfig(backend="lyapunov")
        cache = VerdictCache(tmp_path / "v")
        outcome = verify_program(env, program, config=config, verdict_cache=cache)
        path = cache._path_for(outcome.cache_key)
        wrapper = json.loads(path.read_text())
        del wrapper["entry"]["verified"]  # parses fine, payload incomplete
        path.write_text(json.dumps(wrapper))

        reopened = VerdictCache(tmp_path / "v")
        fresh = verify_program(env, program, config=config, verdict_cache=reopened)
        assert not fresh.from_cache
        assert reopened.stats()["misses"] == 1

    def test_non_polynomial_dynamics_bypass_the_cache(self, tmp_path):
        env, program = _satellite()

        class TranscendentalEnv(type(env)):
            def rate(self, state, action):
                return [np.sin(float(state[0])), float(action[0])]

        weird = TranscendentalEnv(
            a_matrix=env.a_matrix,
            b_matrix=env.b_matrix,
            init_region=env.init_region,
            safe_box=env.safe_box,
            domain=env.domain,
            dt=env.dt,
        )
        assert environment_fingerprint(weird) is None
        cache = VerdictCache(tmp_path / "v")
        outcome = verify_program(
            weird,
            program,
            config=VerificationConfig(backend="lyapunov"),
            verdict_cache=cache,
        )
        assert outcome.cache_key == ""  # never keyed
        assert cache.stats() == {"hits": 0, "misses": 0, "puts": 0}


# --------------------------------------------------- cache through the service
FAST_CEGIS = CEGISConfig(
    synthesis=SynthesisConfig(
        iterations=5, distance=DistanceConfig(num_trajectories=2, trajectory_length=50), seed=0
    ),
    verification=VerificationConfig(backend="lyapunov"),
    max_counterexamples=4,
)


class TestServiceVerdictCache:
    def _oracle(self, env):
        return make_lqr_policy(env)

    def test_synthesis_populates_store_backed_cache(self, tmp_path):
        env = make_environment("satellite")
        service = SynthesisService(store=ShieldStore(tmp_path / "store"))
        assert service.verdict_cache is not None
        result = service.synthesize(env, self._oracle(env), config=FAST_CEGIS)
        assert not result.from_store
        assert service.verdict_cache.puts >= 1
        assert result.artifact.metadata["branch_regions"]

    def test_verify_stored_hits_the_cache(self, tmp_path):
        env = make_environment("satellite")
        service = SynthesisService(store=ShieldStore(tmp_path / "store"))
        result = service.synthesize(env, self._oracle(env), config=FAST_CEGIS)
        hits_before = service.verdict_cache.hits
        all_ok, outcomes, artifact = service.verify_stored(
            result.key, verification=FAST_CEGIS.verification
        )
        assert all_ok
        assert all(outcome.verified for outcome in outcomes)
        # The CEGIS proofs populated the cache under the same keys the
        # recorded branch regions reproduce — the recheck is free.
        assert service.verdict_cache.hits > hits_before
        assert all(outcome.from_cache for outcome in outcomes)

    def test_verify_stored_without_cache_reproves_identically(self, tmp_path):
        env = make_environment("satellite")
        service = SynthesisService(store=ShieldStore(tmp_path / "store"))
        result = service.synthesize(env, self._oracle(env), config=FAST_CEGIS)
        ok_cached, cached, _ = service.verify_stored(
            result.key, verification=FAST_CEGIS.verification
        )
        ok_fresh, fresh, _ = service.verify_stored(
            result.key, verification=FAST_CEGIS.verification, use_cache=False
        )
        assert ok_cached == ok_fresh
        assert [o.verified for o in cached] == [o.verified for o in fresh]
        assert [o.invariant for o in cached] == [o.invariant for o in fresh]
        assert not any(o.from_cache for o in fresh)

    def test_cegis_verdict_cache_round_trip_is_bit_identical(self, tmp_path):
        env = make_environment("satellite")
        oracle = self._oracle(env)
        cache = VerdictCache(tmp_path / "verdicts")
        first = CEGISLoop(env, oracle, config=FAST_CEGIS, verdict_cache=cache).run()
        hits_after_first = cache.hits
        second = CEGISLoop(env, oracle, config=FAST_CEGIS, verdict_cache=cache).run()
        plain = CEGISLoop(env, oracle, config=FAST_CEGIS).run()
        assert cache.hits > hits_after_first  # re-synthesis served from cache
        for other in (second, plain):
            assert other.covered == first.covered
            assert other.counterexamples_used == first.counterexamples_used
            assert len(other.branches) == len(first.branches)
            for mine, theirs in zip(first.branches, other.branches):
                assert mine.invariant == theirs.invariant
                np.testing.assert_array_equal(mine.program.gain, theirs.program.gain)
