"""Shared test fixtures: the session-wide counterexample recorder.

Setting ``REPRO_RECORD_CEX`` makes the tier-1 suite persist every
counterexample found anywhere in the toolchain (CEGIS probes, barrier
condition failures, replay refutations) to ``tests/data/counterexamples/``:

    REPRO_RECORD_CEX=1 PYTHONPATH=src python -m pytest -x -q

writes ``tier1_counterexamples.json`` (grouped by environment), which
``tests/test_counterexample_replay.py`` then replays against the stored
shields in ``tests/data/counterexamples/store``.  Unset (the default, e.g. in
CI) the suite never writes outside pytest's tmp dirs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

DATA_DIR = Path(__file__).parent / "data" / "counterexamples"
TIER1_CORPUS = DATA_DIR / "tier1_counterexamples.json"


@pytest.fixture(scope="session", autouse=True)
def record_counterexamples_to_corpus():
    """Persist every counterexample found during the run (opt-in via env var)."""
    target = os.environ.get("REPRO_RECORD_CEX", "")
    if target.lower() in ("", "0", "false", "no", "off"):
        yield
        return

    from repro.core import install_global_recorder

    records = []
    install_global_recorder(records.append)
    try:
        yield
    finally:
        install_global_recorder(None)
        path = TIER1_CORPUS if target.lower() in ("1", "true", "yes", "on") else Path(target)
        grouped = {}
        for record in records:
            entry = record.to_dict()
            grouped.setdefault(entry.pop("environment") or "unknown", []).append(entry)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "description": "counterexamples found while running the test suite",
                    "total": len(records),
                    "environments": grouped,
                },
                indent=2,
                sort_keys=True,
            )
        )
