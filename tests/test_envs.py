"""Tests for the environment substrate (all 16 benchmark transition systems)."""

import numpy as np
import pytest

from repro.envs import (
    BENCHMARKS,
    benchmark_names,
    get_benchmark,
    make_car_platoon,
    make_cartpole,
    make_environment,
    make_pendulum,
    make_self_driving,
)
from repro.lang import AffineProgram

ALL_NAMES = benchmark_names()


@pytest.fixture(params=ALL_NAMES)
def env(request):
    return make_environment(request.param)


class TestEveryBenchmark:
    def test_regions_are_consistent(self, env):
        assert env.init_region.is_subset_of(env.safe_box)
        assert env.safe_box.is_subset_of(env.domain)

    def test_initial_states_are_safe(self, env):
        rng = np.random.default_rng(0)
        for state in env.init_region.sample(rng, 20):
            assert not env.is_unsafe(state)

    def test_unsafe_region_detection(self, env):
        outside = np.asarray(env.safe_box.high) * 1.5 + 0.5
        assert env.is_unsafe(outside)

    def test_step_shape_and_finiteness(self, env):
        rng = np.random.default_rng(1)
        state = env.sample_initial_state(rng)
        action = np.zeros(env.action_dim)
        next_state = env.step(state, action, rng)
        assert next_state.shape == (env.state_dim,)
        assert np.isfinite(next_state).all()

    def test_symbolic_closed_loop_matches_numeric(self, env):
        """The polynomial lowering must agree with the simulator — the property
        that makes verified invariants meaningful for the simulated system."""
        rng = np.random.default_rng(2)
        program = AffineProgram(gain=np.zeros((env.action_dim, env.state_dim)))
        polys = env.closed_loop_polynomials(program)
        for state in env.init_region.sample(rng, 5):
            symbolic = np.array([p.evaluate(state) for p in polys])
            numeric = env.predict(state, program.act(state))
            np.testing.assert_allclose(symbolic, numeric, atol=1e-9)

    def test_reward_penalises_unsafe(self, env):
        safe_state = np.zeros(env.state_dim)
        unsafe_state = np.asarray(env.safe_box.high) * 2.0 + 1.0
        action = np.zeros(env.action_dim)
        assert env.reward(unsafe_state, action) < env.reward(safe_state, action)

    def test_action_clipping(self, env):
        if env.action_high is None:
            pytest.skip("no actuator bounds")
        huge = np.full(env.action_dim, 1e9)
        np.testing.assert_allclose(env.clip_action(huge), env.action_high)

    def test_simulation_rollout(self, env):
        rng = np.random.default_rng(3)
        trajectory = env.simulate(lambda s: np.zeros(env.action_dim), steps=20, rng=rng)
        assert len(trajectory.states) == 21
        assert trajectory.actions.shape == (20, env.action_dim)
        assert trajectory.rewards.shape == (20,)

    def test_spec_metadata(self, env):
        spec = get_benchmark(env.name if env.name in BENCHMARKS else "pendulum")
        assert spec.description or spec.name

    def test_state_names_cardinality(self, env):
        assert len(env.state_names) == env.state_dim


class TestSpecificDynamics:
    def test_pendulum_gravity_destabilises_without_control(self):
        env = make_pendulum(safe_angle_deg=90.0)
        rng = np.random.default_rng(0)
        state = np.array([0.3, 0.0])
        for _ in range(200):
            state = env.step(state, np.zeros(1), rng)
        assert abs(state[0]) > 0.3  # falls over without a controller

    def test_pendulum_table3_parameters(self):
        heavier = make_pendulum(mass=1.3)
        longer = make_pendulum(length=0.65)
        nominal = make_pendulum()
        state = np.array([0.2, 0.0])
        action = np.array([1.0])
        # A heavier/longer pendulum reacts less to the same torque.
        assert abs(heavier.rate_numeric(state, action)[1]) < abs(
            nominal.rate_numeric(state, action)[1]
        )
        assert abs(longer.rate_numeric(state, action)[1]) < abs(
            nominal.rate_numeric(state, action)[1]
        )

    def test_cartpole_pole_length_changes_dynamics(self):
        short = make_cartpole(pole_length=0.5)
        long = make_cartpole(pole_length=0.65)
        state = np.array([0.0, 0.0, 0.2, 0.0])
        action = np.array([0.0])
        assert not np.allclose(short.rate_numeric(state, action), long.rate_numeric(state, action))

    def test_platoon_dimensions(self):
        assert make_car_platoon(4).state_dim == 8
        assert make_car_platoon(8).state_dim == 16
        with pytest.raises(ValueError):
            make_car_platoon(0)

    def test_platoon_coupling_structure(self):
        env = make_car_platoon(2)
        a, b = env.linear_matrices()
        # follower 2's velocity error reacts to its own and its predecessor's action
        assert b[3, 1] == 1.0 and b[3, 0] == -1.0

    def test_self_driving_obstacle_narrows_corridor(self):
        nominal = make_self_driving(obstacle=False)
        obstacle = make_self_driving(obstacle=True)
        assert obstacle.safe_box.high[0] < nominal.safe_box.high[0]
        assert obstacle.name != nominal.name

    def test_lane_keeping_has_disturbance(self):
        env = make_environment("lane_keeping")
        assert env.disturbance_bound is not None
        rng = np.random.default_rng(0)
        disturbances = [env.sample_disturbance(rng) for _ in range(20)]
        assert any(np.any(d != 0) for d in disturbances)
        assert all(np.all(np.abs(d) <= env.disturbance_bound + 1e-12) for d in disturbances)

    def test_oscillator_filter_chain(self):
        env = make_environment("oscillator")
        a, _ = env.linear_matrices()
        assert env.state_dim == 18
        # each filter stage feeds the next
        assert a[3, 2] != 0.0 and a[17, 16] != 0.0

    def test_biology_dynamics_are_polynomial_nonlinear(self):
        env = make_environment("biology")
        state = np.array([1.0, 0.2, 0.0])
        doubled = 2.0 * state
        rate1 = env.rate_numeric(state, np.zeros(1))
        rate2 = env.rate_numeric(doubled, np.zeros(1))
        # bilinear glucose/insulin-action coupling => not homogeneous of degree 1
        assert not np.allclose(rate2, 2.0 * rate1)


class TestRegistry:
    def test_all_names_resolvable(self):
        for name in ALL_NAMES:
            assert make_environment(name).state_dim >= 2

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_benchmark("does_not_exist")

    def test_table1_subset(self):
        table1 = benchmark_names(table1_only=True)
        assert "duffing" not in table1
        assert len(table1) == 15

    def test_paper_reference_numbers_present(self):
        spec = get_benchmark("pendulum")
        assert spec.paper_failures == 60
        assert spec.paper_program_size == 3

    def test_factory_overrides(self):
        env = make_environment("pendulum", safe_angle_deg=30.0)
        assert env.safe_angle_deg == 30.0
