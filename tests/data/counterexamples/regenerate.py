"""Regenerate the counterexample regression corpus and its embedded store.

For each corpus environment this script

1. runs a CEGIS loop against a *destabilizing* oracle so the replay cache
   collects genuine unsafe-trajectory witnesses (the "historical
   counterexamples");
2. synthesizes the real shield from the environment's LQR teacher and files
   it in the embedded :class:`~repro.store.ShieldStore` under ``store/``;
3. writes ``<env>.json`` pairing the witnesses with the stored shield's key.

``tests/test_counterexample_replay.py`` asserts that every stored shield
still rejects (stays safe from) all of its historical counterexamples.

Run from the repository root whenever synthesis defaults change::

    PYTHONPATH=src python tests/data/counterexamples/regenerate.py
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.baselines import make_lqr_policy
from repro.core import (
    CEGISConfig,
    CEGISLoop,
    DistanceConfig,
    SynthesisConfig,
    VerificationConfig,
)
from repro.envs import make_environment
from repro.lang import AffineProgram, ShieldArtifact
from repro.store import ShieldStore, SynthesisService, config_hash

DATA_DIR = Path(__file__).parent
CORPUS_ENVIRONMENTS = ("satellite", "tape", "suspension", "self_driving")
SEED = 0

CONFIG = CEGISConfig(
    synthesis=SynthesisConfig(
        iterations=3,
        distance=DistanceConfig(num_trajectories=1, trajectory_length=30),
        seed=SEED,
    ),
    verification=VerificationConfig(backend="lyapunov"),
    max_counterexamples=4,
    seed=SEED,
)


def collect_witnesses(env) -> list:
    """Counterexamples from a destabilizing oracle's failed CEGIS run."""
    unstable = AffineProgram(gain=5.0 * np.abs(make_lqr_policy(env).gain))
    config = replace(
        CONFIG,
        max_counterexamples=2,
        max_shrink_iterations=4,
        synthesis=replace(CONFIG.synthesis, iterations=1, learning_rate=0.0),
    )
    loop = CEGISLoop(env, unstable, config=config)
    loop.run()
    return [record.to_dict() for record in loop.replay_cache.records]


def main() -> int:
    store = ShieldStore(DATA_DIR / "store")
    service = SynthesisService(store=store)
    for name in CORPUS_ENVIRONMENTS:
        env = make_environment(name)
        counterexamples = collect_witnesses(env)
        result = service.synthesize(
            env,
            make_lqr_policy(env),
            config=CONFIG,
            environment=name,
            reuse=False,
            extra_metadata={"corpus": "counterexample-regression"},
        )
        corpus = {
            "environment": name,
            "artifact_key": result.key,
            "seed": SEED,
            "config_hash": config_hash(CONFIG),
            "counterexamples": counterexamples,
        }
        path = DATA_DIR / f"{name}.json"
        path.write_text(json.dumps(corpus, indent=2, sort_keys=True))
        print(
            f"{name}: {len(counterexamples)} counterexample(s), "
            f"shield {result.key[:12]} -> {path.name}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
