"""Tests for program/invariant simplification (repro.lang.simplify)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certificates import Box
from repro.lang import AffineProgram, ExprProgram, GuardedProgram, Invariant, parse_expression
from repro.lang.simplify import (
    SimplificationReport,
    simplify_invariant,
    simplify_polynomial,
    simplify_program,
)
from repro.polynomials import Polynomial, monomial_basis


UNIT_BOX = Box((-1.0, -1.0), (1.0, 1.0))


class TestSimplifyPolynomial:
    def test_drops_negligible_terms(self):
        basis = monomial_basis(2, 2)
        # The 1e-15 coefficient is already below the Polynomial constructor's own
        # tolerance; the 1e-12 one survives construction and must be dropped here.
        coeffs = [1.0, 1e-12, -2.0, 1e-15, 0.5, 3.0]
        poly = Polynomial.from_coefficients(coeffs, basis, 2)
        simplified, report = simplify_polynomial(poly, reference_box=UNIT_BOX)
        assert report.dropped_terms == 1
        assert len(simplified.terms) == 4
        assert report.max_output_deviation < 1e-10

    def test_rounds_coefficients(self):
        from repro.polynomials import Monomial

        poly = Polynomial.affine([1.23456789, -0.000987654321], 2.718281828, 2)
        simplified, report = simplify_polynomial(poly, significant_digits=3)
        assert report.rounded_terms >= 2
        assert simplified.coefficient(Monomial.variable(0, 2)) == pytest.approx(1.23)
        assert simplified.coefficient(Monomial.variable(1, 2)) == pytest.approx(-0.000988)

    def test_deviation_bound_is_sound_on_box(self):
        rng = np.random.default_rng(0)
        basis = monomial_basis(2, 3)
        poly = Polynomial.from_coefficients(rng.normal(size=len(basis)), basis, 2)
        simplified, report = simplify_polynomial(
            poly, reference_box=UNIT_BOX, significant_digits=2
        )
        points = UNIT_BOX.sample(rng, 200)
        gaps = np.abs(simplified.evaluate_batch(points) - poly.evaluate_batch(points))
        assert np.max(gaps) <= report.max_output_deviation + 1e-12

    def test_zero_polynomial_unchanged(self):
        simplified, report = simplify_polynomial(Polynomial.zero(3))
        assert simplified.is_zero()
        assert report.dropped_terms == 0
        assert report.max_output_deviation == 0.0

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_property_simplification_never_exceeds_reported_bound(self, data):
        basis = monomial_basis(2, 2)
        coeffs = [
            data.draw(st.floats(min_value=-5, max_value=5, allow_nan=False)) for _ in basis
        ]
        poly = Polynomial.from_coefficients(coeffs, basis, 2)
        digits = data.draw(st.integers(min_value=1, max_value=6))
        simplified, report = simplify_polynomial(
            poly, reference_box=UNIT_BOX, significant_digits=digits
        )
        point = [
            data.draw(st.floats(min_value=-1, max_value=1, allow_nan=False)) for _ in range(2)
        ]
        gap = abs(simplified.evaluate(point) - poly.evaluate(point))
        assert gap <= report.max_output_deviation + 1e-9


class TestSimplifyInvariant:
    def test_membership_preserved_away_from_boundary(self):
        barrier = Polynomial.quadratic_form(np.diag([1.000000001, 0.499999999])) - 0.25
        invariant = Invariant(barrier=barrier, names=("x", "y"))
        simplified, report = simplify_invariant(
            invariant, reference_box=UNIT_BOX, significant_digits=4
        )
        rng = np.random.default_rng(1)
        for point in rng.uniform(-1, 1, size=(100, 2)):
            margin_gap = abs(invariant.value(point))
            if margin_gap > report.max_output_deviation:
                assert simplified.holds(point) == invariant.holds(point)

    def test_note_added_when_deviation_nonzero(self):
        barrier = Polynomial.affine([1.2345678901234], -0.777777777, 1)
        invariant = Invariant(barrier=barrier)
        _, report = simplify_invariant(
            invariant, reference_box=Box((-1.0,), (1.0,)), significant_digits=2
        )
        assert report.max_output_deviation > 0
        assert any("re-verify" in note for note in report.notes)


class TestSimplifyProgram:
    def _guarded(self) -> GuardedProgram:
        inner = Invariant(
            barrier=Polynomial.quadratic_form(np.eye(2)) - 1.0, names=("x", "y")
        )
        outer = Invariant(
            barrier=Polynomial.quadratic_form(np.eye(2)) - 4.0, names=("x", "y")
        )
        # The third branch is strictly inside the first one: prunable.
        redundant = Invariant(
            barrier=Polynomial.quadratic_form(np.eye(2)) - 0.25, names=("x", "y")
        )
        return GuardedProgram(
            branches=[
                (inner, AffineProgram(gain=[[0.390000001, -1.41000000002]], names=("x", "y"))),
                (outer, AffineProgram(gain=[[0.88, -2.34]], names=("x", "y"))),
                (redundant, AffineProgram(gain=[[0.1, -0.1]], names=("x", "y"))),
            ],
            names=("x", "y"),
        )

    def test_affine_program_rounding(self):
        program = AffineProgram(gain=[[1.23456789, -2.000000001]], bias=[1e-12])
        simplified, report = simplify_program(
            program, reference_box=UNIT_BOX, significant_digits=4
        )
        assert isinstance(simplified, AffineProgram)
        assert simplified.bias[0] == 0.0
        assert report.dropped_terms >= 1
        state = np.array([0.5, -0.5])
        assert abs(simplified.act(state)[0] - program.act(state)[0]) <= (
            report.max_output_deviation + 1e-9
        )

    def test_expr_program_simplification(self):
        exprs = (parse_expression("1.00000000001*x0^2 + 0.0000000001*x1", names=["x0", "x1"]),)
        program = ExprProgram(exprs=exprs, state_dim=2, names=("x0", "x1"))
        simplified, report = simplify_program(program, reference_box=UNIT_BOX)
        assert isinstance(simplified, ExprProgram)
        assert report.dropped_terms + report.rounded_terms >= 1

    def test_guarded_program_prunes_redundant_branch(self):
        program = self._guarded()
        big_box = Box((-3.0, -3.0), (3.0, 3.0))
        simplified, report = simplify_program(program, reference_box=big_box)
        assert isinstance(simplified, GuardedProgram)
        assert len(simplified.branches) == 2
        assert report.dropped_branches == 1
        # Behaviour on the sampled region is unchanged for states where branch
        # selection is unaffected.
        rng = np.random.default_rng(2)
        for state in big_box.sample(rng, 100):
            if program.branch_index(state) in (0, 1):
                np.testing.assert_allclose(
                    simplified.act(state), program.act(state), atol=1e-6
                )

    def test_pruning_can_be_disabled(self):
        program = self._guarded()
        simplified, report = simplify_program(
            program, reference_box=Box((-3.0, -3.0), (3.0, 3.0)), prune_covered_branches=False
        )
        assert len(simplified.branches) == 3
        assert report.dropped_branches == 0

    def test_report_merge_and_describe(self):
        first = SimplificationReport(dropped_terms=1, rounded_terms=2, max_output_deviation=0.1)
        second = SimplificationReport(dropped_terms=3, dropped_branches=1, max_output_deviation=0.05)
        first.merge(second)
        assert first.dropped_terms == 4
        assert first.dropped_branches == 1
        assert first.max_output_deviation == pytest.approx(0.1)
        assert "dropped 4 term(s)" in first.describe()


class TestFoldConstants:
    """Constant folding surfaced by the lowering pass (repro.compile)."""

    def test_zero_times_x_keeps_the_factor(self):
        from repro.lang import Const, Mul, Var, fold_constants

        # 0 * x is NOT collapsed to 0: at x = inf/nan the product is nan, so
        # the zero must survive as an explicit factor (IEEE-faithful fold).
        expr = Mul((Const(0.0), Var(0)))
        folded = fold_constants(expr)
        assert folded == Mul((Const(0.0), Var(0)))
        assert folded.evaluate([float("inf")]) != folded.evaluate([float("inf")])  # nan

    def test_zero_times_constant_still_collapses(self):
        from repro.lang import Const, Mul, fold_constants

        assert fold_constants(Mul((Const(0.0), Const(2.0)))) == Const(0.0)

    def test_folds_x_plus_zero(self):
        from repro.lang import Add, Const, Var, fold_constants

        expr = Add((Var(1), Const(0.0)))
        assert fold_constants(expr) == Var(1)

    def test_folds_one_times_x_and_constant_subtrees(self):
        from repro.lang import Add, Const, Mul, Var, fold_constants

        expr = Mul((Const(1.0), Var(0)))
        assert fold_constants(expr) == Var(0)
        constant_tree = Add((Const(2.0), Mul((Const(3.0), Const(4.0)))))
        assert fold_constants(constant_tree) == Const(14.0)

    def test_folds_nested_dead_weight(self):
        from repro.lang import Add, Const, Mul, Var, fold_constants

        # 0*x + (y + 0) + 1*(2*3)  ->  0*x + y + 6
        expr = Add(
            (
                Mul((Const(0.0), Var(0))),
                Add((Var(1), Const(0.0))),
                Mul((Const(1.0), Mul((Const(2.0), Const(3.0))))),
            )
        )
        folded = fold_constants(expr)
        assert isinstance(folded, Add)
        # The 0*x factor survives (nan-faithful); everything else collapses.
        assert folded.operands == (Mul((Const(0.0), Var(0))), Var(1), Const(6.0))

    def test_folded_and_raw_expressions_lower_to_identical_tables(self):
        """The core satellite assertion, from two independent directions.

        1. *Value preservation*: ``fold_constants`` denotes the same
           polynomial as the raw tree — checked through ``to_polynomial``
           directly (no folding involved on the raw side), so a
           semantics-changing fold bug cannot hide behind the lowering pass.
        2. *Table identity*: a tree wrapped in dead weight (``0*x``, ``+ 0``,
           ``1*…*0`` subtrees) lowers to coefficient tables identical to the
           bare tree's — the dead weight contributes exactly nothing to the
           kernel.
        """
        from repro.compile import lower_exprs
        from repro.lang import Add, Const, Mul, Var, fold_constants

        rng = np.random.default_rng(0)

        def random_expr(depth, num_vars):
            roll = rng.random()
            if depth == 0 or roll < 0.3:
                if rng.random() < 0.5:
                    return Const(float(rng.normal(scale=2.0)))
                return Var(int(rng.integers(num_vars)))
            ops = tuple(
                random_expr(depth - 1, num_vars) for _ in range(int(rng.integers(2, 4)))
            )
            return Add(ops) if roll < 0.65 else Mul(ops)

        for _ in range(100):
            num_vars = int(rng.integers(1, 4))
            expr = random_expr(3, num_vars)
            # Inject explicit dead weight around the random tree.
            noisy = Add(
                (
                    Mul((Const(0.0), Var(0))),
                    expr,
                    Const(0.0),
                    Mul((Const(1.0), Var(num_vars - 1), Const(0.0))),
                )
            )
            folded = fold_constants(noisy)
            # (1) Folding preserves the denoted polynomial (raw side unfolded;
            # Polynomial.__eq__ tolerates the scalar-reassociation ULPs).
            assert folded.to_polynomial(num_vars) == noisy.to_polynomial(num_vars)
            # (2) Dead weight leaves no trace in the lowered tables.
            noisy_tables = lower_exprs([noisy], num_vars).table()
            bare_tables = lower_exprs([expr], num_vars).table()
            for with_noise, bare in zip(noisy_tables, bare_tables):
                np.testing.assert_array_equal(with_noise, bare)

    def test_folding_simplified_programs_lowers_identically(self):
        """simplify_program output and its raw input lower to the same tables
        once the simplifier's own (reported) coefficient edits are disabled."""
        from repro.compile import lower_program
        from repro.lang import fold_constants

        rng = np.random.default_rng(1)
        program = ExprProgram(
            exprs=tuple(
                fold_constants(parse_expression("0 * x0 + 1 * x1 + x0 * x0 + 0"))
                for _ in range(2)
            ),
            state_dim=2,
        )
        simplified, _ = simplify_program(
            program, drop_tolerance=0.0, significant_digits=17
        )
        raw_kernel = lower_program(program)
        cooked_kernel = lower_program(simplified)
        states = rng.normal(size=(20, 2))
        np.testing.assert_allclose(
            raw_kernel.act(states), cooked_kernel.act(states), rtol=1e-12
        )
