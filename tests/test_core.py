"""Tests for the paper's core algorithms: distance, synthesis (Alg. 1),
verification, CEGIS (Alg. 2), shielding (Alg. 3), and the end-to-end toolchain."""

import numpy as np
import pytest

from repro.baselines import make_lqr_policy
from repro.core import (
    CEGISConfig,
    CEGISLoop,
    DistanceConfig,
    ProgramSynthesizer,
    Shield,
    SynthesisConfig,
    VerificationConfig,
    program_oracle_distance,
    regression_warm_start,
    synthesize_shield,
    trajectory_distance,
    verify_program,
)
from repro.envs import make_environment, make_quadcopter, make_satellite
from repro.lang import AffineProgram, AffineSketch
from repro.rl import train_oracle
from repro.runtime import EvaluationProtocol, compare_shielded, evaluate_policy

FAST_SYNTH = SynthesisConfig(
    iterations=6, distance=DistanceConfig(num_trajectories=2, trajectory_length=50), seed=0
)
FAST_CEGIS = CEGISConfig(
    synthesis=FAST_SYNTH,
    verification=VerificationConfig(backend="auto", invariant_degree=2),
    max_counterexamples=4,
)


@pytest.fixture(scope="module")
def satellite_oracle():
    env = make_satellite()
    oracle = train_oracle(env, method="cloned", hidden_sizes=(24, 16), seed=0).policy
    return env, oracle


# ----------------------------------------------------------------------- distance
class TestDistance:
    def test_identical_policies_have_zero_distance(self, satellite_oracle):
        env, oracle = satellite_oracle
        rng = np.random.default_rng(0)
        value = program_oracle_distance(env, oracle, oracle, rng, DistanceConfig(num_trajectories=2, trajectory_length=30))
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_distance_decreases_with_disagreement(self, satellite_oracle):
        env, oracle = satellite_oracle
        rng = np.random.default_rng(0)
        near = AffineProgram(gain=np.array([[-0.5, -1.0]]))
        far = AffineProgram(gain=np.array([[5.0, 5.0]]))
        d_near = program_oracle_distance(env, near, oracle, np.random.default_rng(1), DistanceConfig(num_trajectories=2, trajectory_length=30))
        d_far = program_oracle_distance(env, far, oracle, np.random.default_rng(1), DistanceConfig(num_trajectories=2, trajectory_length=30))
        assert d_near > d_far

    def test_unsafe_states_incur_large_penalty(self, satellite_oracle):
        env, oracle = satellite_oracle
        rng = np.random.default_rng(0)
        trajectory = env.simulate(oracle, steps=10, rng=rng)
        trajectory.states[5] = np.asarray(env.safe_box.high) * 3.0
        penalised = trajectory_distance(env, trajectory, oracle, oracle, DistanceConfig(unsafe_penalty=1234.0))
        assert penalised <= -1234.0


# ---------------------------------------------------------------------- synthesis
class TestSynthesis:
    def test_warm_start_recovers_linear_oracle(self):
        env = make_satellite()
        teacher = make_lqr_policy(env)
        sketch = AffineSketch(state_dim=2, action_dim=1)
        warm = regression_warm_start(env, teacher, sketch, np.random.default_rng(0))
        np.testing.assert_allclose(warm, teacher.gain.ravel(), atol=0.05)

    def test_synthesized_program_tracks_oracle(self, satellite_oracle):
        env, oracle = satellite_oracle
        sketch = AffineSketch(
            state_dim=2, action_dim=1, action_low=env.action_low, action_high=env.action_high
        )
        result = ProgramSynthesizer(env, oracle, sketch, FAST_SYNTH).synthesize()
        rng = np.random.default_rng(0)
        states = env.init_region.sample(rng, 50)
        gaps = [abs(float(result.program.act(s)[0] - oracle(s)[0])) for s in states]
        scale = np.mean([abs(float(oracle(s)[0])) for s in states]) + 1e-6
        assert np.mean(gaps) / scale < 0.6
        assert result.iterations >= 1
        assert result.wall_clock_seconds > 0

    def test_initial_parameters_override(self, satellite_oracle):
        env, oracle = satellite_oracle
        sketch = AffineSketch(state_dim=2, action_dim=1)
        start = np.array([-1.0, -1.0])
        result = ProgramSynthesizer(env, oracle, sketch, FAST_SYNTH).synthesize(
            initial_parameters=start
        )
        assert result.parameters.shape == start.shape


# ------------------------------------------------------------------- verification
class TestVerification:
    def test_lyapunov_backend_on_linear_benchmark(self):
        env = make_satellite()
        program = AffineProgram(gain=make_lqr_policy(env).gain)
        outcome = verify_program(env, program, config=VerificationConfig(backend="lyapunov"))
        assert outcome.verified
        assert outcome.backend == "lyapunov"
        assert outcome.invariant.holds(np.zeros(2))

    def test_lyapunov_backend_rejects_nonlinear_env(self):
        env = make_environment("duffing")
        program = AffineProgram(gain=np.array([[-1.0, -1.0]]))
        outcome = verify_program(env, program, config=VerificationConfig(backend="lyapunov"))
        assert not outcome.verified

    def test_barrier_backend_on_linear_benchmark(self):
        env = make_satellite()
        program = AffineProgram(gain=make_lqr_policy(env).gain)
        outcome = verify_program(
            env, program, config=VerificationConfig(backend="barrier", invariant_degree=2)
        )
        assert outcome.verified
        assert outcome.backend == "barrier"

    def test_unstable_program_is_rejected(self):
        env = make_satellite()
        program = AffineProgram(gain=np.array([[5.0, 5.0]]))
        outcome = verify_program(env, program)
        assert not outcome.verified
        assert outcome.failure_reason

    def test_verified_invariant_respects_conditions_empirically(self):
        env = make_satellite()
        program = AffineProgram(gain=make_lqr_policy(env).gain)
        outcome = verify_program(env, program)
        invariant = outcome.invariant
        rng = np.random.default_rng(0)
        # Init condition.
        assert all(invariant.holds(s) for s in env.init_region.sample(rng, 50))
        # Unsafe condition.
        unsafe_samples = env.unsafe_region.sample(rng, 100)
        assert not any(invariant.holds(s) for s in unsafe_samples)
        # Induction along simulated trajectories.
        state = env.init_region.sample(rng, 1)[0]
        for _ in range(300):
            assert invariant.holds(state)
            state = env.step(state, program.act(state))

    def test_unknown_backend(self):
        env = make_satellite()
        program = AffineProgram(gain=np.array([[-1.0, -1.0]]))
        with pytest.raises(ValueError):
            verify_program(env, program, config=VerificationConfig(backend="nonsense"))


# ------------------------------------------------------------------------- CEGIS
class TestCEGIS:
    def test_cegis_covers_satellite(self, satellite_oracle):
        env, oracle = satellite_oracle
        result = CEGISLoop(env, oracle, config=FAST_CEGIS).run()
        assert result.covered
        assert result.program_size >= 1
        program = result.program
        # Theorem 4.2: every initial state lies in some branch invariant.
        rng = np.random.default_rng(0)
        for state in env.init_region.sample(rng, 50):
            assert result.invariant.holds(state)
            assert program.branch_index(state) >= 0

    def test_cegis_reports_failure_for_impossible_sketch(self):
        # The quadcopter is open-loop unstable (no contraction without feedback),
        # so a synthesis run pinned at θ = 0 cannot produce a certifiable program.
        env = make_quadcopter()

        def hostile_oracle(state):
            return np.array([10.0])  # constant saturating action, not stabilising

        config = CEGISConfig(
            synthesis=SynthesisConfig(
                iterations=2,
                warm_start_with_regression=False,
                learning_rate=0.0,
                distance=DistanceConfig(num_trajectories=1, trajectory_length=20),
            ),
            verification=VerificationConfig(backend="lyapunov"),
            max_counterexamples=2,
            max_shrink_iterations=2,
        )
        result = CEGISLoop(env, hostile_oracle, config=config).run()
        assert not result.covered


# ------------------------------------------------------------------------ shield
class TestShield:
    def test_shield_end_to_end_on_satellite(self, satellite_oracle):
        env, oracle = satellite_oracle
        result = synthesize_shield(env, oracle, config=FAST_CEGIS)
        protocol = EvaluationProtocol(episodes=5, steps=120, seed=1)
        comparison = compare_shielded(env, oracle, result.shield, protocol)
        assert comparison.shielded.failures == 0
        assert comparison.program.failures == 0
        assert result.program_size >= 1
        assert "def P(" in result.pretty_program()

    def test_shield_blocks_adversarial_policy(self, satellite_oracle):
        env, oracle = satellite_oracle
        result = synthesize_shield(env, oracle, config=FAST_CEGIS)

        def adversary(state):
            return np.asarray(env.action_high)  # always slam the actuator

        shield = Shield(env, adversary, result.program, result.invariant)
        metrics = evaluate_policy(env, shield, EvaluationProtocol(episodes=3, steps=150, seed=2), shield=shield)
        assert metrics.failures == 0
        assert metrics.interventions > 0

    def test_shield_statistics_and_reset(self, satellite_oracle):
        env, oracle = satellite_oracle
        result = synthesize_shield(env, oracle, config=FAST_CEGIS)
        shield = result.shield
        shield.reset_statistics()
        state = env.sample_initial_state(np.random.default_rng(0))
        shield.act(state)
        assert shield.statistics.decisions == 1
        shield.reset_statistics()
        assert shield.statistics.decisions == 0

    def test_raising_program_leaves_counters_consistent(self):
        """A program that fails while computing the fallback must not be counted
        as an intervention (or a decision): the counters stay consistent."""
        env = make_satellite()

        class ExplodingProgram:
            def act(self, state):
                raise RuntimeError("fallback controller crashed")

        from repro.lang import Invariant, InvariantUnion
        from repro.polynomials import Polynomial

        # An invariant so tight every proposed action triggers the override path.
        invariant = Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - 1e-12)
        destabilising = AffineProgram(gain=[[5.0, 5.0]], names=env.state_names)
        shield = Shield(
            env=env,
            neural_policy=destabilising,
            program=ExplodingProgram(),
            invariant=InvariantUnion([invariant]),
        )
        with pytest.raises(RuntimeError, match="fallback controller crashed"):
            shield.act(np.array([0.4, 0.4]))
        assert shield.statistics.interventions == 0
        assert shield.statistics.decisions == 0

    def test_would_intervene_is_side_effect_free(self, satellite_oracle):
        env, oracle = satellite_oracle
        result = synthesize_shield(env, oracle, config=FAST_CEGIS)
        shield = result.shield
        before = shield.statistics.decisions
        shield.would_intervene(np.zeros(2))
        assert shield.statistics.decisions == before
