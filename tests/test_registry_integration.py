"""Integration tests across every registered benchmark environment.

These tests sweep the whole registry rather than single environments, checking
the cross-cutting invariants the toolchain relies on:

* every benchmark constructs, simulates, and reports consistent dimensions;
* the symbolic (polynomial) view of the dynamics agrees with the numeric
  fast-path — the property that guarantees the verified model and the simulated
  model cannot drift apart;
* the LQR teacher (used to clone oracles) is well defined for every benchmark;
* registry metadata used by the experiment harness is complete.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_lqr_policy
from repro.envs import BENCHMARKS, benchmark_names, get_benchmark, make_environment
from repro.lang import AffineProgram

ALL_BENCHMARKS = benchmark_names()
TABLE1_BENCHMARKS = benchmark_names(table1_only=True)


class TestRegistryMetadata:
    def test_expected_benchmark_count(self):
        # 15 Table 1 rows plus the Duffing oscillator of Example 4.3.
        assert len(TABLE1_BENCHMARKS) == 15
        assert "duffing" in ALL_BENCHMARKS

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("fusion_reactor")

    @pytest.mark.parametrize("name", TABLE1_BENCHMARKS)
    def test_paper_columns_recorded(self, name):
        spec = BENCHMARKS[name]
        assert spec.paper_vars is not None
        assert spec.paper_network_size
        assert spec.paper_overhead_percent is not None
        assert spec.description

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_vars_column_matches_environment(self, name):
        spec = BENCHMARKS[name]
        env = spec.make()
        if spec.paper_vars is not None:
            assert env.state_dim == spec.paper_vars


class TestEnvironmentConsistency:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_construction_and_basic_geometry(self, name):
        env = make_environment(name)
        assert env.state_dim >= 1 and env.action_dim >= 1
        assert env.init_region.is_subset_of(env.safe_box)
        assert env.safe_box.is_subset_of(env.domain)
        assert env.dt > 0
        assert len(env.state_names) == env.state_dim

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_symbolic_and_numeric_dynamics_agree(self, name):
        """rate() lowered to polynomials must equal rate_numeric() pointwise."""
        env = make_environment(name)
        rng = np.random.default_rng(0)
        gain = 0.1 * rng.normal(size=(env.action_dim, env.state_dim))
        program = AffineProgram(gain=gain)
        closed_loop = env.closed_loop_polynomials(program)
        for state in env.safe_box.sample(rng, 10):
            action = program.act(state)
            expected = state + env.dt * env.rate_numeric(state, action)
            symbolic = np.array([poly.evaluate(state) for poly in closed_loop])
            np.testing.assert_allclose(symbolic, expected, rtol=1e-8, atol=1e-8)

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_unsafe_cover_boxes_contain_sampled_unsafe_states(self, name):
        env = make_environment(name)
        rng = np.random.default_rng(1)
        cover = env.unsafe_cover_boxes()
        samples = env.unsafe_region.sample(rng, 50)
        for state in samples:
            assert env.is_unsafe(state)
            assert any(box.contains(state, tolerance=1e-9) for box in cover)

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_simulation_from_initial_states_is_finite(self, name):
        env = make_environment(name)
        policy = make_lqr_policy(env)
        trajectory = env.simulate(policy, steps=50, rng=np.random.default_rng(2))
        assert np.isfinite(trajectory.states).all()
        assert trajectory.states.shape == (51, env.state_dim)
        assert trajectory.actions.shape == (50, env.action_dim)

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_lqr_teacher_exists_and_respects_bounds(self, name):
        env = make_environment(name)
        policy = make_lqr_policy(env)
        rng = np.random.default_rng(3)
        for state in env.init_region.sample(rng, 5):
            action = policy(state)
            assert action.shape == (env.action_dim,)
            if env.action_low is not None:
                assert np.all(action >= env.action_low - 1e-9)
            if env.action_high is not None:
                assert np.all(action <= env.action_high + 1e-9)

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_prediction_matches_disturbance_free_step(self, name):
        env = make_environment(name)
        rng = np.random.default_rng(4)
        state = env.sample_initial_state(rng)
        action = np.zeros(env.action_dim)
        np.testing.assert_allclose(
            env.predict(state, action), env.step(state, action, rng=None), atol=1e-12
        )
