"""Tests for the policy programming language (expressions, programs, invariants, sketches)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (
    Add,
    AffineProgram,
    AffineSketch,
    Const,
    GuardedProgram,
    Invariant,
    InvariantSketch,
    InvariantUnion,
    Mul,
    PolynomialSketch,
    TrueInvariant,
    UnreachableBranchError,
    Var,
    affine_expr,
    expr_from_polynomial,
)
from repro.polynomials import Polynomial


# ------------------------------------------------------------------- expressions
class TestExpr:
    def test_const_and_var(self):
        assert Const(2.5).evaluate([1.0]) == 2.5
        assert Var(1).evaluate([3.0, 4.0]) == 4.0

    def test_operator_sugar(self):
        expr = Var(0) * 2.0 + Var(1) - 1.0
        assert expr.evaluate([3.0, 4.0]) == pytest.approx(9.0)

    def test_expr_to_polynomial_roundtrip(self):
        expr = Add((Mul((Const(2.0), Var(0), Var(0))), Var(1)))
        poly = expr.to_polynomial(2)
        for point in ([1.0, 2.0], [-0.5, 3.0]):
            assert poly.evaluate(point) == pytest.approx(expr.evaluate(point))

    def test_variables_tracking(self):
        expr = Var(2) + Var(0) * Var(2)
        assert expr.variables() == (0, 2)

    def test_affine_expr(self):
        expr = affine_expr([1.0, -2.0], 0.5, names=("a", "b"))
        assert expr.evaluate([2.0, 1.0]) == pytest.approx(0.5)
        assert "a" in expr.pretty()

    def test_expr_from_polynomial(self):
        poly = Polynomial.affine([3.0, 0.0], -1.0, 2) ** 2
        expr = expr_from_polynomial(poly)
        for point in ([0.2, 0.9], [1.5, -2.0]):
            assert expr.evaluate(point) == pytest.approx(poly.evaluate(point))

    def test_empty_operands_rejected(self):
        with pytest.raises(ValueError):
            Add(())
        with pytest.raises(ValueError):
            Mul(())


# -------------------------------------------------------------------- invariants
class TestInvariant:
    def _circle(self, radius=1.0):
        barrier = Polynomial.quadratic_form(np.eye(2)) - radius**2
        return Invariant(barrier=barrier)

    def test_membership(self):
        inv = self._circle()
        assert inv.holds([0.5, 0.5])
        assert not inv.holds([1.5, 0.0])

    def test_value_sign(self):
        inv = self._circle()
        assert inv.value([0.0, 0.0]) < 0
        assert inv.value([2.0, 0.0]) > 0

    def test_batch_matches_scalar(self):
        inv = self._circle()
        points = np.random.default_rng(0).uniform(-2, 2, size=(50, 2))
        batch = inv.holds_batch(points)
        assert all(batch[i] == inv.holds(points[i]) for i in range(len(points)))

    def test_margin(self):
        inv = Invariant(barrier=Polynomial.quadratic_form(np.eye(2)), margin=1.0)
        assert inv.holds([1.0, 0.0])
        assert not inv.holds([1.1, 0.0])

    def test_true_invariant(self):
        inv = TrueInvariant(2)
        assert inv.holds([100.0, 100.0])
        assert inv.holds_batch(np.ones((3, 2))).all()

    def test_union_any_semantics(self):
        left = Invariant(Polynomial.quadratic_form(np.eye(2), center=[-1, 0]) - 0.25)
        right = Invariant(Polynomial.quadratic_form(np.eye(2), center=[1, 0]) - 0.25)
        union = InvariantUnion([left, right])
        assert union.holds([-1.0, 0.0])
        assert union.holds([1.0, 0.0])
        assert not union.holds([0.0, 1.0])
        assert union.first_satisfied([1.0, 0.0]) == 1
        assert union.first_satisfied([0.0, 5.0]) == -1

    def test_union_dimension_mismatch(self):
        union = InvariantUnion([self._circle()])
        with pytest.raises(ValueError):
            union.add(Invariant(Polynomial.variable(0, 3)))

    def test_pretty(self):
        assert "<=" in self._circle().pretty()
        assert "\\/" in InvariantUnion([self._circle(), self._circle()]).pretty()


# ---------------------------------------------------------------------- programs
class TestAffineProgram:
    def test_action_computation(self):
        program = AffineProgram(gain=np.array([[1.0, -2.0]]), bias=np.array([0.5]))
        np.testing.assert_allclose(program.act([2.0, 1.0]), [0.5])

    def test_clipping(self):
        program = AffineProgram(
            gain=np.array([[10.0, 0.0]]), action_low=[-1.0], action_high=[1.0]
        )
        assert program.act([5.0, 0.0])[0] == 1.0
        assert program.act([-5.0, 0.0])[0] == -1.0

    def test_batch_matches_scalar(self):
        program = AffineProgram(gain=np.array([[1.0, 2.0], [0.0, -1.0]]))
        states = np.random.default_rng(2).normal(size=(20, 2))
        batch = program.act_batch(states)
        for state, action in zip(states, batch):
            np.testing.assert_allclose(action, program.act(state))

    def test_parameters_roundtrip(self):
        program = AffineProgram(gain=np.array([[1.0, 2.0]]), bias=np.array([3.0]))
        rebuilt = program.with_parameters(program.parameters)
        np.testing.assert_allclose(rebuilt.gain, program.gain)
        np.testing.assert_allclose(rebuilt.bias, program.bias)

    def test_to_polynomials(self):
        program = AffineProgram(gain=np.array([[1.0, -1.0]]), bias=np.array([2.0]))
        (poly,) = program.to_polynomials()
        assert poly.evaluate([3.0, 1.0]) == pytest.approx(4.0)

    def test_pretty_uses_names(self):
        program = AffineProgram(gain=np.array([[-12.0, -5.9]]), names=("eta", "omega"))
        assert "eta" in program.pretty()


class TestGuardedProgram:
    def _make(self, strict=False):
        inside = Invariant(Polynomial.quadratic_form(np.eye(2)) - 1.0)
        outer = Invariant(Polynomial.quadratic_form(np.eye(2)) - 4.0)
        inner_prog = AffineProgram(gain=np.array([[-1.0, 0.0]]))
        outer_prog = AffineProgram(gain=np.array([[-2.0, 0.0]]))
        return GuardedProgram(
            branches=[(inside, inner_prog), (outer, outer_prog)], strict=strict
        )

    def test_branch_selection_order(self):
        program = self._make()
        assert program.branch_index([0.1, 0.1]) == 0
        assert program.branch_index([1.5, 0.0]) == 1
        np.testing.assert_allclose(program.act([1.5, 0.0]), [-3.0])

    def test_strict_abort(self):
        program = self._make(strict=True)
        with pytest.raises(UnreachableBranchError):
            program.act([10.0, 0.0])

    def test_lenient_fallback_to_nearest_branch(self):
        program = self._make(strict=False)
        action = program.act([10.0, 0.0])
        assert action.shape == (1,)

    def test_invariant_union(self):
        program = self._make()
        assert len(program.invariant) == 2

    def test_pretty_contains_abort(self):
        assert "abort" in self._make().pretty(("x", "y"))

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            GuardedProgram(branches=[])


# ---------------------------------------------------------------------- sketches
class TestSketches:
    def test_affine_sketch_parameter_count(self):
        sketch = AffineSketch(state_dim=3, action_dim=2, include_bias=True)
        assert sketch.num_parameters == 2 * 4

    def test_affine_sketch_instantiate_roundtrip(self):
        sketch = AffineSketch(state_dim=2, action_dim=1, include_bias=False)
        theta = np.array([1.5, -2.5])
        program = sketch.instantiate(theta)
        np.testing.assert_allclose(program.gain, [[1.5, -2.5]])
        np.testing.assert_allclose(sketch.parameters_of(program), theta)

    def test_affine_sketch_wrong_size(self):
        sketch = AffineSketch(state_dim=2, action_dim=1)
        with pytest.raises(ValueError):
            sketch.instantiate([1.0, 2.0, 3.0])

    def test_initial_parameters_are_zero(self):
        sketch = AffineSketch(state_dim=4, action_dim=2)
        assert not np.any(sketch.initial_parameters())

    def test_polynomial_sketch(self):
        sketch = PolynomialSketch(state_dim=2, action_dim=1, degree=2)
        theta = np.zeros(sketch.num_parameters)
        theta[1] = 1.0  # coefficient of the first degree-1 monomial
        program = sketch.instantiate(theta)
        assert program.act([2.0, 0.0]).shape == (1,)

    def test_invariant_sketch_instantiate(self):
        sketch = InvariantSketch(state_dim=2, degree=2)
        coeffs = np.zeros(sketch.num_coefficients)
        # E = x0^2 + x1^2 - 1
        for index, monomial in enumerate(sketch.basis):
            if monomial.exponents == (2, 0) or monomial.exponents == (0, 2):
                coeffs[index] = 1.0
            if monomial.exponents == (0, 0):
                coeffs[index] = -1.0
        invariant = sketch.instantiate(coeffs)
        assert invariant.holds([0.5, 0.5])
        assert not invariant.holds([1.0, 1.0])

    def test_invariant_sketch_degree_validation(self):
        with pytest.raises(ValueError):
            InvariantSketch(state_dim=2, degree=0)

    def test_invariant_sketch_wrong_coefficient_count(self):
        sketch = InvariantSketch(state_dim=2, degree=2)
        with pytest.raises(ValueError):
            sketch.instantiate(np.zeros(sketch.num_coefficients + 1))


# ---------------------------------------------------------------- property tests
gain_floats = st.floats(min_value=-10, max_value=10, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(st.lists(gain_floats, min_size=2, max_size=2), st.lists(gain_floats, min_size=2, max_size=2))
def test_affine_program_matches_polynomial_lowering(gain, state):
    program = AffineProgram(gain=np.array([gain]))
    (poly,) = program.to_polynomials()
    assert poly.evaluate(state) == pytest.approx(float(program.act(state)[0]), rel=1e-9, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.lists(gain_floats, min_size=6, max_size=6), st.lists(gain_floats, min_size=2, max_size=2))
def test_invariant_sketch_membership_consistent_with_barrier_sign(coeffs, state):
    sketch = InvariantSketch(state_dim=2, degree=2)
    invariant = sketch.instantiate(coeffs)
    assert invariant.holds(state) == (invariant.barrier.evaluate(state) <= 0.0)
