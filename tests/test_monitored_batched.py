"""Property tests: batched fleet monitoring ≡ the scalar monitor, plus the
adaptive maintenance loop end to end.

The batched monitor (``repro.runtime.monitored``) must reproduce the scalar
:func:`monitor_episode` bookkeeping exactly: same per-episode intervention,
model-mismatch, and invariant-excursion counts under the same seed for
disturbance-free environments, and the same counts *and* disturbance estimate
for single-episode disturbed deployments (where the generator streams
coincide).  The adaptation tests pin the paper's Section 3 loop: a widened
runtime disturbance estimate invalidates a weak deployed certificate, which
triggers store-backed re-synthesis with provenance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_lqr_policy
from repro.core import (
    CEGISConfig,
    DistanceConfig,
    Shield,
    SynthesisConfig,
    VerificationConfig,
)
from repro.envs import (
    BoundedUniformDisturbance,
    SinusoidalDisturbance,
    TruncatedGaussianDisturbance,
    make_environment,
)
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.policies import LinearPolicy
from repro.runtime import (
    MonitoredBatchedCampaign,
    adapt_shield,
    monitor_episode,
    monitor_fleet,
    recheck_certificate,
)
from repro.runtime.adaptation import widened_environment
from repro.store import ShieldStore, SynthesisService

#: Environments the equivalence property is pinned on: five LTI plants plus a
#: nonlinear one — all disturbance-free (no built-in draws), which is what makes
#: the scalar and batched generator streams coincide bit for bit.
EQUIVALENCE_ENVS = (
    "satellite",
    "dcmotor",
    "tape",
    "suspension",
    "magnetic_pointer",
    "pendulum",
)


def _make_shield(env, neural_scale=2.0, invariant_level=0.25):
    """A hand-built monitored deployment: LQR program, ellipsoidal invariant,
    mildly destabilising linear 'network' so the shield actually intervenes."""
    program = AffineProgram(gain=make_lqr_policy(env).gain, names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(env.state_dim)) - invariant_level,
        names=env.state_names,
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=env.state_names)
    neural = LinearPolicy(gain=neural_scale * np.ones((env.action_dim, env.state_dim)))
    return Shield(
        env=env,
        neural_policy=neural,
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


def _scalar_reports(name, episodes, steps, seed, disturbance=None):
    """The sequential reference: same initial-state stream as the fleet."""
    env = make_environment(name)
    shield = _make_shield(env)
    inits = env.sample_initial_states(np.random.default_rng(seed), episodes)
    return [
        monitor_episode(
            shield,
            steps=steps,
            rng=np.random.default_rng(seed),
            initial_state=s0,
            disturbance=disturbance,
        )
        for s0 in inits
    ]


class TestFleetScalarEquivalence:
    @pytest.mark.parametrize("name", EQUIVALENCE_ENVS)
    def test_fleet_counts_match_scalar_monitor(self, name):
        """Disturbance-free: per-episode counters are bit-for-bit identical."""
        episodes, steps, seed = 5, 100, 3
        scalars = _scalar_reports(name, episodes, steps, seed)
        env = make_environment(name)
        fleet = monitor_fleet(
            _make_shield(env), episodes=episodes, steps=steps, rng=np.random.default_rng(seed)
        )
        assert list(fleet.interventions) == [r.interventions for r in scalars]
        assert list(fleet.model_mismatches) == [r.model_mismatches for r in scalars]
        assert list(fleet.invariant_excursions) == [r.invariant_excursions for r in scalars]
        assert fleet.decisions == sum(r.decisions for r in scalars)

    @pytest.mark.parametrize("name", ("satellite", "pendulum"))
    def test_fleet_barrier_peaks_match_scalar_records(self, name):
        episodes, steps, seed = 4, 80, 1
        scalars = _scalar_reports(name, episodes, steps, seed)
        env = make_environment(name)
        fleet = monitor_fleet(
            _make_shield(env), episodes=episodes, steps=steps, rng=np.random.default_rng(seed)
        )
        expected = [max(rec.barrier_value for rec in r.records) for r in scalars]
        np.testing.assert_allclose(fleet.peak_barrier_values, expected, rtol=1e-10)

    @pytest.mark.parametrize(
        "disturbance_factory",
        [
            lambda dim: BoundedUniformDisturbance(magnitude=np.full(dim, 0.15)),
            lambda dim: TruncatedGaussianDisturbance(
                mean=np.zeros(dim), std=np.full(dim, 0.05)
            ),
            lambda dim: SinusoidalDisturbance(amplitude=np.full(dim, 0.2), period=40.0),
        ],
        ids=["uniform", "gaussian", "sinusoidal"],
    )
    @pytest.mark.parametrize("name", ("satellite", "pendulum"))
    def test_single_episode_disturbed_matches_scalar(self, name, disturbance_factory):
        """episodes=1: the per-step draw streams coincide, so the trajectories
        agree to floating-point noise and the fitted estimates to high precision.

        Counts are allowed a tiny slack: batched linear algebra (``s @ A.T``)
        and scalar (``A @ s``) can differ in the last ulp, which may flip a
        verdict on a step that grazes the invariant boundary exactly.
        """
        env = make_environment(name)
        steps, seed = 120, 7
        initial = env.sample_initial_states(np.random.default_rng(99), 1)
        scalar = monitor_episode(
            _make_shield(make_environment(name)),
            steps=steps,
            rng=np.random.default_rng(seed),
            initial_state=initial[0],
            disturbance=disturbance_factory(env.state_dim),
        )
        fleet = monitor_fleet(
            _make_shield(env),
            episodes=1,
            steps=steps,
            rng=np.random.default_rng(seed),
            disturbance=disturbance_factory(env.state_dim),
            initial_states=initial,
        )
        assert abs(int(fleet.interventions[0]) - scalar.interventions) <= 2
        assert abs(int(fleet.model_mismatches[0]) - scalar.model_mismatches) <= 2
        assert abs(int(fleet.invariant_excursions[0]) - scalar.invariant_excursions) <= 2
        assert (fleet.disturbance_estimate is None) == (scalar.disturbance_estimate is None)
        if fleet.disturbance_estimate is not None:
            np.testing.assert_allclose(
                fleet.disturbance_estimate.mean, scalar.disturbance_estimate.mean,
                rtol=1e-6, atol=1e-9,
            )
            np.testing.assert_allclose(
                fleet.disturbance_estimate.bound, scalar.disturbance_estimate.bound,
                rtol=1e-6, atol=1e-9,
            )

    def test_mismatch_detected_fleet_wide_under_unmodelled_disturbance(self):
        """A large unmodelled kick produces excursions the model did not predict."""
        env = make_environment("pendulum")
        shield = _make_shield(env, neural_scale=-0.5, invariant_level=0.02)
        fleet = monitor_fleet(
            shield,
            episodes=8,
            steps=60,
            rng=np.random.default_rng(0),
            disturbance=BoundedUniformDisturbance(magnitude=[0.0, 60.0]),
        )
        assert fleet.total_invariant_excursions > 0
        assert fleet.total_model_mismatches > 0
        assert fleet.disturbance_estimate is not None
        assert fleet.disturbance_estimate.bound[1] > 1.0

    def test_sinusoidal_fleet_per_episode_phases(self):
        env = make_environment("satellite")
        rng = np.random.default_rng(5)
        model = SinusoidalDisturbance.fleet(
            amplitude=np.full(env.state_dim, 0.1), episodes=6, rng=rng, period_spread=0.2
        )
        fleet = monitor_fleet(
            _make_shield(env), episodes=6, steps=50, rng=rng, disturbance=model
        )
        assert fleet.episodes == 6
        assert np.isfinite(fleet.final_states).all()
        # Different phases => the episodes do not all see identical residuals.
        assert fleet.disturbance_estimate is not None

    def test_dimension_and_shape_validation(self):
        env = make_environment("satellite")
        shield = _make_shield(env)
        with pytest.raises(ValueError, match="disturbance dimension"):
            MonitoredBatchedCampaign(
                shield=shield, steps=10, disturbance=BoundedUniformDisturbance(magnitude=[0.1])
            )
        campaign = MonitoredBatchedCampaign(shield=shield, steps=10)
        with pytest.raises(ValueError, match="initial states"):
            campaign.run(3, np.random.default_rng(0), initial_states=np.zeros((2, 2)))

    def test_shield_statistics_accumulate_through_fleet(self):
        env = make_environment("satellite")
        shield = _make_shield(env)
        monitor_fleet(shield, episodes=4, steps=25, rng=np.random.default_rng(0))
        assert shield.statistics.decisions == 100

    def test_decide_batch_predicted_matches_decide_batch(self):
        """The 3-tuple variant returns the same decisions plus the executed
        actions' predicted successors (no full-batch re-prediction needed)."""
        env = make_environment("satellite")
        shield_a = _make_shield(env)
        shield_b = _make_shield(env)
        states = env.safe_box.sample(np.random.default_rng(2), 32)
        actions_a, intervened_a = shield_a.decide_batch(states)
        actions_b, intervened_b, predicted = shield_b.decide_batch_predicted(states)
        np.testing.assert_array_equal(actions_a, actions_b)
        np.testing.assert_array_equal(intervened_a, intervened_b)
        assert intervened_b.any() and not intervened_b.all()
        np.testing.assert_allclose(
            predicted, env.predict_batch(states, actions_b), rtol=1e-12, atol=1e-12
        )
        assert shield_b.statistics.decisions == 32
        assert shield_b.statistics.interventions == shield_a.statistics.interventions


# ---------------------------------------------------------------- adaptation
def _weak_deployment(env):
    """A deployed shield whose program is certifiable without disturbance but
    loses its certificate once the bound widens (slow contraction)."""
    weak = AffineProgram(gain=[[-0.5, -0.3]], names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(2)) - 0.6, names=env.state_names
    )
    guarded = GuardedProgram(branches=[(invariant, weak)], names=env.state_names)
    oracle = LinearPolicy(gain=np.array([[-3.0, -2.5]]))
    shield = Shield(
        env=env,
        neural_policy=oracle,
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )
    return shield, oracle


FAST_CEGIS = CEGISConfig(
    synthesis=SynthesisConfig(
        iterations=6, distance=DistanceConfig(num_trajectories=2, trajectory_length=60), seed=0
    ),
    verification=VerificationConfig(backend="lyapunov"),
    max_counterexamples=4,
)


class TestAdaptationLoop:
    def test_recheck_valid_without_disturbance(self):
        env = make_environment("satellite")
        shield, _ = _weak_deployment(env)
        ok, outcomes = recheck_certificate(env, shield)
        assert ok and all(o.verified for o in outcomes)

    def test_recheck_verdicts_are_disturbance_aware(self):
        """Every kernel verdict on a disturbed environment must model the
        bound: the portfolio filters out disturbance-blind backends, so there
        is no pinning and no blindness flag to propagate."""
        env = make_environment("satellite")
        shield, _ = _weak_deployment(env)
        widened = widened_environment(env, np.full(2, 0.02))
        ok, outcomes = recheck_certificate(widened, shield)
        assert outcomes
        assert all(outcome.disturbance_aware for outcome in outcomes)
        # Provenance names only disturbance-aware backends.
        assert all(
            outcome.backend in ("lyapunov", "sos", "barrier") for outcome in outcomes
        )

    def test_adaptation_outcome_reports_backend_provenance(self, tmp_path):
        env = make_environment("satellite")
        shield, oracle = _weak_deployment(env)
        outcome = adapt_shield(
            shield,
            episodes=10,
            steps=100,
            rng=np.random.default_rng(0),
            disturbance=BoundedUniformDisturbance(magnitude=[0.01, 0.01]),
            oracle=oracle,
        )
        assert outcome.certificate_valid
        assert outcome.recheck_backends
        assert outcome.summary()["recheck_backends"] == ",".join(outcome.recheck_backends)
        assert all(v.disturbance_aware for v in outcome.verifications)

    def test_recheck_widened_bound_asks_the_kernel(self):
        """Under a bound that breaks the Lyapunov contraction the kernel keeps
        dispatching disturbance-aware backends; whatever the verdict, it is
        never a disturbance-blind SAFE."""
        env = make_environment("satellite")
        shield, _ = _weak_deployment(env)
        widened = widened_environment(env, np.full(2, 0.15))
        ok, outcomes = recheck_certificate(widened, shield)
        assert not ok
        assert outcomes[0].attempts  # portfolio provenance present
        assert outcomes[0].disturbance_aware

    def test_certificate_valid_skips_resynthesis(self, tmp_path):
        env = make_environment("satellite")
        shield, oracle = _weak_deployment(env)
        service = SynthesisService(store=ShieldStore(tmp_path / "store"))
        outcome = adapt_shield(
            shield,
            episodes=10,
            steps=100,
            rng=np.random.default_rng(0),
            disturbance=BoundedUniformDisturbance(magnitude=[0.01, 0.01]),
            oracle=oracle,
            service=service,
            config=FAST_CEGIS,
            environment="satellite",
        )
        assert outcome.certificate_valid
        assert not outcome.resynthesized
        assert len(service.store) == 0

    def test_widened_estimate_triggers_resynthesis_and_persists(self, tmp_path):
        """The acceptance scenario: a runtime estimate the deployed certificate
        cannot absorb forces store-backed re-synthesis with provenance."""
        env = make_environment("satellite")
        shield, oracle = _weak_deployment(env)
        service = SynthesisService(store=ShieldStore(tmp_path / "store"))
        outcome = adapt_shield(
            shield,
            episodes=20,
            steps=150,
            rng=np.random.default_rng(0),
            disturbance=BoundedUniformDisturbance(magnitude=[0.08, 0.08]),
            oracle=oracle,
            service=service,
            config=FAST_CEGIS,
            environment="satellite",
            prior_key="deadbeef",
        )
        assert outcome.estimate is not None
        assert np.all(outcome.widened_bound >= 0.1)  # the 3-sigma widened bound
        assert not outcome.certificate_valid
        assert outcome.resynthesized
        assert outcome.repaired_shield is not None
        assert outcome.store_key

        # The repaired shield is persisted with provenance linking it to the
        # estimate that forced it, and its environment is reconstructible.
        artifact = service.store.get(outcome.store_key)
        assert artifact.metadata["adaptation"] == "runtime-disturbance-estimate"
        assert artifact.metadata["adapted_from"] == "deadbeef"
        assert artifact.metadata["estimate_samples"] == outcome.estimate.samples
        assert artifact.environment == "satellite"
        np.testing.assert_allclose(
            artifact.environment_overrides["disturbance_bound"], outcome.widened_bound
        )
        rebuilt_env = make_environment(
            artifact.environment, **artifact.environment_overrides
        )
        np.testing.assert_allclose(rebuilt_env.disturbance_bound, outcome.widened_bound)

        # The repaired program really is certified under the widened bound.
        repaired_ok, _ = recheck_certificate(
            widened_environment(env, outcome.widened_bound), outcome.repaired_shield
        )
        assert repaired_ok

    def test_monitoring_only_mode_stops_after_recheck(self):
        env = make_environment("satellite")
        shield, oracle = _weak_deployment(env)
        outcome = adapt_shield(
            shield,
            episodes=10,
            steps=100,
            rng=np.random.default_rng(0),
            disturbance=BoundedUniformDisturbance(magnitude=[0.08, 0.08]),
            oracle=oracle,
            service=None,
        )
        assert not outcome.certificate_valid
        assert not outcome.resynthesized
        assert outcome.repaired_shield is None
