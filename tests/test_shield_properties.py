"""Property-based tests of the shield's behavioural guarantees (Algorithm 3).

These complement the unit tests in ``test_core.py`` with randomised checks of
the properties the shield construction is supposed to provide *by design*:

* the shield is transparent exactly when the neural proposal's predicted
  successor stays inside the invariant;
* when the shield intervenes it executes the verified program's action;
* the shield never emits an action outside the environment's actuator bounds
  when its constituent policies respect them;
* deploying the shield never increases the number of episodes that reach an
  unsafe state, relative to the bare network, when the program/invariant pair
  has been verified by the toolchain.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_environment, verify_program
from repro.baselines import make_lqr_policy
from repro.core import Shield
from repro.lang import AffineProgram, GuardedProgram, InvariantUnion


@pytest.fixture(scope="module")
def satellite():
    return make_environment("satellite")


@pytest.fixture(scope="module")
def verified_pair(satellite):
    """A (program, invariant) pair actually verified by the toolchain."""
    program = AffineProgram(
        gain=make_lqr_policy(satellite).gain,
        action_low=satellite.action_low,
        action_high=satellite.action_high,
        names=satellite.state_names,
    )
    outcome = verify_program(satellite, program)
    assert outcome.verified, outcome.failure_reason
    guarded = GuardedProgram(branches=[(outcome.invariant, program)], names=satellite.state_names)
    return guarded, InvariantUnion([outcome.invariant])


def _make_shield(satellite, verified_pair, neural_gain) -> Shield:
    program, invariant = verified_pair
    neural = AffineProgram(
        gain=neural_gain,
        action_low=satellite.action_low,
        action_high=satellite.action_high,
    )
    return Shield(env=satellite, neural_policy=neural, program=program, invariant=invariant)


class TestShieldDecisionProperties:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_transparent_iff_prediction_stays_inside(self, satellite, verified_pair, data):
        gain_entries = [
            data.draw(st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
            for _ in range(satellite.state_dim * satellite.action_dim)
        ]
        neural_gain = np.asarray(gain_entries).reshape(satellite.action_dim, satellite.state_dim)
        shield = _make_shield(satellite, verified_pair, neural_gain)
        state = np.asarray(
            [
                data.draw(st.floats(min_value=float(l), max_value=float(h), allow_nan=False))
                for l, h in zip(satellite.safe_box.low, satellite.safe_box.high)
            ]
        )
        proposed = shield.neural_policy(state)
        predicted = satellite.predict(state, proposed)
        expected_transparent = shield.invariant.holds(predicted)
        action = shield.act(state)
        if expected_transparent:
            np.testing.assert_allclose(action, np.atleast_1d(proposed), atol=1e-12)
            assert shield.statistics.interventions == 0
        else:
            np.testing.assert_allclose(action, shield.program.act(state), atol=1e-12)
            assert shield.statistics.interventions == 1
        assert shield.would_intervene(state) == (not expected_transparent)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_actions_respect_actuator_bounds(self, satellite, verified_pair, data):
        neural_gain = np.asarray(
            [
                data.draw(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
                for _ in range(satellite.state_dim * satellite.action_dim)
            ]
        ).reshape(satellite.action_dim, satellite.state_dim)
        shield = _make_shield(satellite, verified_pair, neural_gain)
        state = np.asarray(
            [
                data.draw(st.floats(min_value=float(l), max_value=float(h), allow_nan=False))
                for l, h in zip(satellite.domain.low, satellite.domain.high)
            ]
        )
        action = shield.act(state)
        assert np.all(action >= satellite.action_low - 1e-9)
        assert np.all(action <= satellite.action_high + 1e-9)

    def test_statistics_accumulate_across_decisions(self, satellite, verified_pair):
        shield = _make_shield(satellite, verified_pair, np.zeros((1, satellite.state_dim)))
        rng = np.random.default_rng(0)
        for state in satellite.init_region.sample(rng, 25):
            shield.act(state)
        assert shield.statistics.decisions == 25
        shield.reset_statistics()
        assert shield.statistics.decisions == 0


class TestShieldEpisodeProperties:
    @pytest.mark.parametrize("neural_scale", [0.0, 1.0, 5.0])
    def test_shielded_failures_never_exceed_bare_failures(
        self, satellite, verified_pair, neural_scale
    ):
        """A verified shield can only remove failures, never add them."""
        rng = np.random.default_rng(1)
        neural_gain = neural_scale * np.ones((satellite.action_dim, satellite.state_dim))
        shield = _make_shield(satellite, verified_pair, neural_gain)
        neural = shield.neural_policy

        bare_failures = 0
        shielded_failures = 0
        for episode in range(10):
            start = satellite.sample_initial_state(rng)
            bare = satellite.simulate(neural, steps=150, initial_state=start)
            shielded = satellite.simulate(shield, steps=150, initial_state=start)
            bare_failures += int(bare.became_unsafe)
            shielded_failures += int(shielded.became_unsafe)
        assert shielded_failures <= bare_failures
        assert shielded_failures == 0

    def test_shield_keeps_destabilising_network_safe(self, satellite, verified_pair):
        shield = _make_shield(
            satellite, verified_pair, 5.0 * np.ones((satellite.action_dim, satellite.state_dim))
        )
        rng = np.random.default_rng(2)
        trajectory = satellite.simulate(
            shield, steps=300, initial_state=satellite.init_region.sample(rng, 1)[0]
        )
        assert trajectory.unsafe_steps == 0
