"""Tests for the independent invariant audit (repro.certificates.audit)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_environment, verify_program
from repro.baselines import make_lqr_policy
from repro.certificates import audit_invariant, audit_shield
from repro.core import VerificationConfig
from repro.lang import AffineProgram, GuardedProgram, Invariant
from repro.polynomials import Polynomial


@pytest.fixture(scope="module")
def satellite():
    return make_environment("satellite")


@pytest.fixture(scope="module")
def satellite_program(satellite):
    lqr = make_lqr_policy(satellite)
    return AffineProgram(gain=lqr.gain, names=satellite.state_names)


@pytest.fixture(scope="module")
def satellite_outcome(satellite, satellite_program):
    outcome = verify_program(satellite, satellite_program)
    assert outcome.verified, outcome.failure_reason
    return outcome


class TestAuditInvariant:
    def test_verified_invariant_passes_audit(self, satellite, satellite_program, satellite_outcome):
        report = audit_invariant(satellite, satellite_program, satellite_outcome.invariant)
        assert report.all_hold, report.details
        assert bool(report)
        assert "PASS" in report.summary()

    def test_unknown_engine_raises(self, satellite, satellite_program, satellite_outcome):
        with pytest.raises(ValueError, match="unknown audit engine"):
            audit_invariant(
                satellite, satellite_program, satellite_outcome.invariant, engine="z3"
            )

    def test_farkas_engine_checks_boundary_conditions(
        self, satellite, satellite_program, satellite_outcome
    ):
        # The Farkas engine discharges conditions (8) and (9) with Handelman
        # certificates (it may be incomplete at a fixed degree but must never be
        # unsound); condition (10) always goes through branch-and-bound.
        report = audit_invariant(
            satellite,
            satellite_program,
            satellite_outcome.invariant,
            engine="farkas",
            farkas_degree=2,
        )
        assert report.engine == "farkas"
        assert report.inductive
        # Whatever the Farkas engine *did* certify must agree with the sound
        # branch-and-bound audit (which passes all three conditions).
        bnb = audit_invariant(satellite, satellite_program, satellite_outcome.invariant)
        assert bnb.all_hold
        if report.unsafe_positive:
            assert bnb.unsafe_positive
        if report.init_nonpositive:
            assert bnb.init_nonpositive

    def test_bogus_invariant_fails_condition_8(self, satellite, satellite_program):
        # A huge ellipsoid overlaps the unsafe set -> condition (8) must fail.
        bogus = Invariant(
            barrier=Polynomial.quadratic_form(np.eye(satellite.state_dim)) - 1e6,
            names=satellite.state_names,
        )
        report = audit_invariant(satellite, satellite_program, bogus, max_boxes=20_000)
        assert not report.unsafe_positive
        assert not report.all_hold
        assert "FAIL" in report.summary()

    def test_tiny_invariant_fails_condition_9(self, satellite, satellite_program):
        # An ellipsoid smaller than the initial box cannot contain S0.
        tiny = Invariant(
            barrier=Polynomial.quadratic_form(np.eye(satellite.state_dim)) - 1e-6,
            names=satellite.state_names,
        )
        report = audit_invariant(satellite, satellite_program, tiny, max_boxes=20_000)
        assert not report.init_nonpositive

    def test_unstable_program_fails_condition_10(self, satellite, satellite_outcome):
        # A destabilising gain breaks the induction condition for the same invariant.
        unstable = AffineProgram(
            gain=np.ones((satellite.action_dim, satellite.state_dim)) * 50.0,
            names=satellite.state_names,
        )
        report = audit_invariant(
            satellite, unstable, satellite_outcome.invariant, max_boxes=20_000
        )
        assert not report.inductive

    def test_nonlinear_environment_audit_rejects_unsafe_invariant(self):
        # Pendulum (polynomial dynamics): an invariant that spills past the safe
        # box must be caught by the audit even though the closed loop is nonlinear.
        env = make_environment("pendulum")
        program = AffineProgram(gain=[[-12.05, -5.87]], names=env.state_names)
        too_large = Invariant(
            barrier=Polynomial.quadratic_form(np.eye(2)) - 100.0, names=env.state_names
        )
        report = audit_invariant(env, program, too_large, max_boxes=20_000)
        assert not report.unsafe_positive
        assert not report.all_hold


class TestAuditShield:
    def test_audit_every_branch(self, satellite, satellite_program, satellite_outcome):
        guarded = GuardedProgram(
            branches=[(satellite_outcome.invariant, satellite_program)],
            names=satellite.state_names,
        )
        reports = audit_shield(satellite, guarded)
        assert len(reports) == 1
        assert reports[0].all_hold
