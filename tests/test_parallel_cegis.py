"""Differential tests for the parallel CEGIS driver and the replay cache.

Three families of guarantees:

* ``workers=1`` vs ``workers=4`` with the same seed produce shields with
  identical safety verdicts and equivalent covered initial regions (checked
  on a sampled grid of initial states) — across ≥ 4 registry environments,
  including a multi-branch configuration and an uncoverable one;
* cache-on vs cache-off runs produce bit-identical ``CEGISResult`` programs
  (the replay cache may only skip work, never change the verdict or the
  search path);
* the :class:`CounterexampleCache` itself: sound replay (a hit is a real
  refutation), probing, counters, and JSON persistence.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines import make_lqr_policy
from repro.core import (
    CEGISConfig,
    CEGISLoop,
    CounterexampleCache,
    DistanceConfig,
    SynthesisConfig,
    VerificationConfig,
    batch_reaches_unsafe,
)
from repro.envs import make_environment
from repro.lang import AffineProgram, program_fingerprint

#: Registry environments whose LQR teacher verifies quickly via the exact
#: Lyapunov backend — fast enough to run each four times in this suite.
COVERED_ENVIRONMENTS = ("satellite", "tape", "suspension", "self_driving", "datacenter")

#: An environment the same budget cannot cover — both drivers must agree on
#: the negative verdict too.
UNCOVERED_ENVIRONMENT = "lane_keeping"

FAST = CEGISConfig(
    synthesis=SynthesisConfig(
        iterations=3,
        distance=DistanceConfig(num_trajectories=1, trajectory_length=30),
        seed=0,
    ),
    verification=VerificationConfig(backend="lyapunov"),
    max_counterexamples=4,
    seed=0,
)


def _run(env_name, config, oracle=None):
    env = make_environment(env_name)
    oracle = oracle or make_lqr_policy(env)
    loop = CEGISLoop(env, oracle, config=config)
    return env, loop.run()


def _sampled_coverage(env, result, samples=200, seed=0):
    states = env.init_region.sample(np.random.default_rng(seed), samples)
    if not result.branches:
        return np.zeros(samples, dtype=bool)
    return result.invariant.holds_batch(states)


# ------------------------------------------------------- workers differential
class TestWorkersDifferential:
    @pytest.mark.parametrize("name", COVERED_ENVIRONMENTS)
    def test_parallel_and_sequential_agree(self, name):
        _env, sequential = _run(name, FAST)
        env, parallel = _run(name, replace(FAST, workers=4))
        assert sequential.covered and parallel.covered
        assert parallel.workers == 4
        # Equivalent covered initial regions: every sampled initial state is
        # inside both invariant unions (both results claim full coverage of
        # S0, so both must contain every sample).
        assert _sampled_coverage(env, sequential).all()
        assert _sampled_coverage(env, parallel).all()

    def test_multi_branch_parallel_agrees_with_sequential(self):
        config = replace(FAST, max_counterexamples=12, initial_radius_fraction=0.4)
        env, sequential = _run("satellite", config)
        _env, parallel = _run("satellite", replace(config, workers=4))
        assert sequential.covered and parallel.covered
        assert sequential.program_size >= 2, "fractional radius must force multi-branch"
        assert parallel.program_size >= 2
        assert _sampled_coverage(env, sequential).all()
        assert _sampled_coverage(env, parallel).all()

    def test_uncoverable_environment_same_verdict(self):
        _env, sequential = _run(UNCOVERED_ENVIRONMENT, FAST)
        _env, parallel = _run(UNCOVERED_ENVIRONMENT, replace(FAST, workers=4))
        assert not sequential.covered
        assert not parallel.covered
        assert sequential.failure_reason and parallel.failure_reason

    def test_parallel_run_is_deterministic(self):
        config = replace(FAST, workers=4, max_counterexamples=8, initial_radius_fraction=0.4)
        _env, first = _run("satellite", config)
        _env, second = _run("satellite", config)
        assert first.covered == second.covered
        assert program_fingerprint(first.program) == program_fingerprint(second.program)

    def test_parallel_rounds_record_round_count(self):
        _env, result = _run("satellite", replace(FAST, workers=4))
        assert result.rounds >= 1
        assert result.counterexamples_used >= 1


# --------------------------------------------------------- cache differential
class TestCacheDifferential:
    @pytest.mark.parametrize("name", ("satellite", "tape", "magnetic_pointer"))
    def test_cache_on_off_identical_results(self, name):
        """The replay cache must be invisible in the result, covered or not.

        ``magnetic_pointer`` does not cover under this budget, so the
        comparison also exercises runs with failed verifications (where the
        cache actually probes and replays).
        """
        _env, with_cache = _run(name, replace(FAST, use_replay_cache=True))
        _env, without_cache = _run(name, replace(FAST, use_replay_cache=False))
        assert with_cache.covered == without_cache.covered
        assert with_cache.counterexamples_used == without_cache.counterexamples_used
        assert len(with_cache.branches) == len(without_cache.branches)
        for branch_cached, branch_plain in zip(with_cache.branches, without_cache.branches):
            assert program_fingerprint(branch_cached.program) == program_fingerprint(
                branch_plain.program
            )
            np.testing.assert_allclose(
                branch_cached.counterexample, branch_plain.counterexample
            )
        assert without_cache.cache_hits == 0 and without_cache.cache_misses == 0

    def test_cache_on_off_identical_multi_branch_program(self):
        config = replace(FAST, max_counterexamples=12, initial_radius_fraction=0.4)
        _env, with_cache = _run("satellite", config)
        _env, without_cache = _run("satellite", replace(config, use_replay_cache=False))
        assert with_cache.covered and without_cache.covered
        assert program_fingerprint(with_cache.program) == program_fingerprint(
            without_cache.program
        )

    def test_cache_counters_surface_in_result(self):
        _env, result = _run("satellite", FAST)
        # Every candidate verification is preceded by exactly one replay
        # attempt; with no prior failures these are all misses.
        assert result.cache_misses >= 1
        assert result.cache_hits == 0

    def test_destabilizing_oracle_produces_cache_hits(self):
        """An oracle that drives the system unsafe makes candidates fail with
        concrete unsafe trajectories — the second shrink iteration must then
        be refuted by replay instead of re-running verification."""
        env = make_environment("satellite")
        unstable = AffineProgram(gain=5.0 * np.abs(make_lqr_policy(env).gain))
        config = replace(
            FAST,
            max_counterexamples=1,
            max_shrink_iterations=4,
            synthesis=replace(
                FAST.synthesis, iterations=1, learning_rate=0.0, warm_start_with_regression=True
            ),
        )
        loop = CEGISLoop(env, unstable, config=config)
        result = loop.run()
        assert not result.covered
        assert result.cache_hits >= 1
        assert loop.replay_cache.witness_count >= 1


# ------------------------------------------------------------ cache mechanics
class TestCounterexampleCache:
    def _env_and_programs(self):
        env = make_environment("satellite")
        stable = make_lqr_policy(env)
        unstable = AffineProgram(gain=-4.0 * stable.gain)
        return env, stable, unstable

    def test_replay_hit_is_a_real_refutation(self):
        env, _stable, unstable = self._env_and_programs()
        cache = CounterexampleCache(environment="satellite", horizon=200)
        witness = env.init_region.sample(np.random.default_rng(0), 1)[0]
        cache.record(witness, kind="trajectory")
        refuter = cache.replay(env, unstable, env.init_region)
        assert refuter is not None
        assert cache.hits == 1
        # Soundness: the returned state really does reach unsafe.
        assert batch_reaches_unsafe(env, unstable, refuter[None, :], 200)[0]

    def test_replay_miss_on_safe_program(self):
        env, stable, _unstable = self._env_and_programs()
        cache = CounterexampleCache(environment="satellite", horizon=200)
        cache.record(env.init_region.center, kind="trajectory")
        assert cache.replay(env, stable, env.init_region) is None
        assert cache.misses == 1

    def test_out_of_region_witnesses_are_not_replayed(self):
        env, _stable, unstable = self._env_and_programs()
        cache = CounterexampleCache(environment="satellite", horizon=200)
        far_away = np.asarray(env.domain.high) * 0.99
        cache.record(far_away, kind="trajectory")
        assert cache.replay(env, unstable, env.init_region) is None

    def test_probe_records_unsafe_reaching_states(self):
        env, _stable, unstable = self._env_and_programs()
        cache = CounterexampleCache(environment="satellite", horizon=200, probe_samples=16)
        added = cache.probe(env, unstable, env.init_region)
        assert added >= 1
        assert cache.witness_count == added

    def test_condition_records_are_not_replay_witnesses(self):
        cache = CounterexampleCache()
        cache.record(np.zeros(2), kind="induction")
        cache.record(np.zeros(2), kind="unsafe")
        assert len(cache.records) == 2
        assert cache.witness_count == 0

    def test_unknown_kind_rejected(self):
        cache = CounterexampleCache()
        with pytest.raises(ValueError, match="unknown counterexample kind"):
            cache.record(np.zeros(2), kind="mystery")

    def test_json_round_trip(self, tmp_path):
        cache = CounterexampleCache(environment="satellite", horizon=99)
        cache.record(np.array([0.1, -0.2]), kind="trajectory", source="probe")
        cache.record(np.array([0.3, 0.4]), kind="induction", source="verification")
        path = cache.save(tmp_path / "cex.json")
        restored = CounterexampleCache.load(path)
        assert restored.environment == "satellite"
        assert restored.horizon == 99
        assert len(restored.records) == 2
        assert restored.witness_count == 1
        np.testing.assert_allclose(restored.records[0].state, [0.1, -0.2])
        assert restored.records[1].kind == "induction"

    def test_shared_cache_accumulates_across_runs(self):
        env = make_environment("satellite")
        oracle = make_lqr_policy(env)
        cache = CounterexampleCache(environment="satellite")
        for _ in range(2):
            result = CEGISLoop(env, oracle, config=FAST, replay_cache=cache).run()
            assert result.covered
        assert cache.misses >= 2
