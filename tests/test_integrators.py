"""Tests for the numerical integrators (repro.envs.integrators)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import (
    IntegratedSimulator,
    discretization_gap,
    euler_step,
    get_integrator,
    make_environment,
    rk2_step,
    rk4_step,
)
from repro.lang import AffineProgram


def _exponential_rate(state, action):
    """ṡ = -s (action ignored): solution s(t) = s0·exp(-t)."""
    return -np.asarray(state, dtype=float)


class TestStepFunctions:
    def test_euler_matches_definition(self):
        result = euler_step(_exponential_rate, np.array([1.0]), np.zeros(1), 0.1)
        assert result[0] == pytest.approx(0.9)

    def test_rk2_is_second_order_accurate(self):
        dt = 0.1
        exact = np.exp(-dt)
        euler_error = abs(euler_step(_exponential_rate, np.array([1.0]), np.zeros(1), dt)[0] - exact)
        rk2_error = abs(rk2_step(_exponential_rate, np.array([1.0]), np.zeros(1), dt)[0] - exact)
        assert rk2_error < euler_error / 10

    def test_rk4_is_most_accurate(self):
        dt = 0.1
        exact = np.exp(-dt)
        rk2_error = abs(rk2_step(_exponential_rate, np.array([1.0]), np.zeros(1), dt)[0] - exact)
        rk4_error = abs(rk4_step(_exponential_rate, np.array([1.0]), np.zeros(1), dt)[0] - exact)
        assert rk4_error < rk2_error / 10

    def test_all_integrators_agree_on_constant_rate(self):
        def constant_rate(state, action):
            return np.array([2.0])

        for step in (euler_step, rk2_step, rk4_step):
            result = step(constant_rate, np.array([0.0]), np.zeros(1), 0.5)
            assert result[0] == pytest.approx(1.0)

    def test_get_integrator_lookup(self):
        assert get_integrator("euler") is euler_step
        assert get_integrator("rk2") is rk2_step
        assert get_integrator("rk4") is rk4_step

    def test_get_integrator_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown integrator"):
            get_integrator("leapfrog")

    @settings(max_examples=30, deadline=None)
    @given(
        initial=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        dt=st.floats(min_value=1e-4, max_value=0.05, allow_nan=False),
    )
    def test_property_rk4_closer_to_exact_decay(self, initial, dt):
        exact = initial * np.exp(-dt)
        euler_value = euler_step(_exponential_rate, np.array([initial]), np.zeros(1), dt)[0]
        rk4_value = rk4_step(_exponential_rate, np.array([initial]), np.zeros(1), dt)[0]
        assert abs(rk4_value - exact) <= abs(euler_value - exact) + 1e-12


class TestIntegratedSimulator:
    @pytest.fixture(scope="class")
    def pendulum(self):
        return make_environment("pendulum")

    @pytest.fixture(scope="class")
    def controller(self):
        return AffineProgram(gain=[[-12.05, -5.87]], names=("eta", "omega"))

    def test_unknown_method_raises(self, pendulum):
        with pytest.raises(KeyError):
            IntegratedSimulator(pendulum, method="verlet")

    def test_euler_simulator_matches_env_step(self, pendulum, controller):
        simulator = IntegratedSimulator(pendulum, method="euler")
        state = np.array([0.1, -0.05])
        action = controller.act(state)
        np.testing.assert_allclose(
            simulator.step(state, action), pendulum.step(state, action), atol=1e-12
        )

    def test_rk4_rollout_is_finite_and_stays_safe(self, pendulum, controller):
        simulator = IntegratedSimulator(pendulum, method="rk4")
        trajectory = simulator.simulate(
            controller, steps=300, rng=np.random.default_rng(0), initial_state=np.array([0.2, 0.0])
        )
        assert np.isfinite(trajectory.states).all()
        assert trajectory.unsafe_steps == 0

    def test_rk4_and_euler_rollouts_stay_close_for_small_dt(self, pendulum, controller):
        start = np.array([0.2, 0.1])
        euler_sim = IntegratedSimulator(pendulum, method="euler")
        rk4_sim = IntegratedSimulator(pendulum, method="rk4")
        euler_traj = euler_sim.simulate(controller, steps=200, initial_state=start)
        rk4_traj = rk4_sim.simulate(controller, steps=200, initial_state=start)
        gap = np.max(np.abs(euler_traj.states - rk4_traj.states))
        assert gap < 0.05

    def test_respects_action_clipping(self, pendulum):
        # An absurd gain saturates at max torque under every integrator.
        aggressive = AffineProgram(gain=[[-1e6, -1e6]], names=("eta", "omega"))
        simulator = IntegratedSimulator(pendulum, method="rk4")
        state = np.array([0.2, 0.0])
        stepped = simulator.step(state, aggressive.act(state))
        manual = rk4_step(
            pendulum.rate_numeric, state, np.asarray(pendulum.action_low), pendulum.dt
        )
        np.testing.assert_allclose(stepped, manual, atol=1e-12)


class TestDiscretizationGap:
    def test_gap_is_small_for_well_damped_pendulum(self):
        env = make_environment("pendulum")
        controller = AffineProgram(gain=[[-12.05, -5.87]], names=("eta", "omega"))
        gap = discretization_gap(env, controller, steps=200, initial_state=[0.2, 0.0])
        assert 0.0 <= gap < 0.05

    def test_gap_shrinks_with_dt(self):
        controller = AffineProgram(gain=[[-12.05, -5.87]], names=("eta", "omega"))
        coarse = make_environment("pendulum", dt=0.02)
        fine = make_environment("pendulum", dt=0.005)
        gap_coarse = discretization_gap(coarse, controller, steps=100, initial_state=[0.2, 0.0])
        gap_fine = discretization_gap(fine, controller, steps=400, initial_state=[0.2, 0.0])
        assert gap_fine < gap_coarse

    def test_zero_steps_gives_zero_gap(self):
        env = make_environment("pendulum")
        controller = AffineProgram(gain=[[-12.05, -5.87]], names=("eta", "omega"))
        assert discretization_gap(env, controller, steps=0, initial_state=[0.1, 0.0]) == 0.0
