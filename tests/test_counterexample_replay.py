"""Regression: stored shields must still reject their historical counterexamples.

``tests/data/counterexamples/`` pairs each corpus environment with (a) the
counterexamples collected from failed candidate programs (see
``regenerate.py`` there, plus the optional tier-1 session recorder in
``conftest.py``) and (b) the shield synthesized for that environment, filed
in the embedded artifact store.  "Reject" means: batch-replaying the guarded
program from every historical counterexample state that lies inside the
shield's covered region never reaches an unsafe state — the Theorem 4.2
guarantee, re-checked against states that actually broke earlier candidates.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import batch_reaches_unsafe
from repro.envs import make_environment
from repro.store import ShieldStore

DATA_DIR = Path(__file__).parent / "data" / "counterexamples"
REPLAY_HORIZON = 300

CORPUS_FILES = sorted(
    path
    for path in DATA_DIR.glob("*.json")
    if path.name != "tier1_counterexamples.json"
)


def _load_corpus(path: Path) -> dict:
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def store() -> ShieldStore:
    return ShieldStore(DATA_DIR / "store")


def test_corpus_exists():
    assert CORPUS_FILES, "counterexample corpus is missing; run regenerate.py"
    assert (DATA_DIR / "store" / "objects").is_dir()


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_stored_shield_rejects_historical_counterexamples(path, store):
    corpus = _load_corpus(path)
    artifact = store.get(corpus["artifact_key"])
    assert artifact.environment == corpus["environment"]
    env = make_environment(corpus["environment"])

    states = np.array(
        [entry["state"] for entry in corpus["counterexamples"]], dtype=float
    ).reshape(-1, env.state_dim)
    if states.size == 0:
        pytest.skip(f"no recorded counterexamples for {corpus['environment']}")

    # Only states inside the shield's covered region carry the Theorem 4.2
    # guarantee; condition counterexamples from the certificate search can
    # lie anywhere in the working domain.
    covered = artifact.invariant.holds_batch(states)
    replayable = states[covered]
    assert replayable.shape[0] >= 1, "corpus must contain in-region counterexamples"

    reached_unsafe = batch_reaches_unsafe(
        env, artifact.program, replayable, REPLAY_HORIZON
    )
    assert not reached_unsafe.any(), (
        f"stored shield for {corpus['environment']} fails from "
        f"{int(reached_unsafe.sum())} historical counterexample state(s)"
    )


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_counterexamples_break_a_naive_program(path, store):
    """Sanity: the corpus is not vacuous — an unshielded destabilizing
    program does reach unsafe from at least one recorded counterexample."""
    corpus = _load_corpus(path)
    if not corpus["counterexamples"]:
        pytest.skip("empty corpus entry")
    env = make_environment(corpus["environment"])
    from repro.baselines import make_lqr_policy
    from repro.lang import AffineProgram

    unstable = AffineProgram(gain=5.0 * np.abs(make_lqr_policy(env).gain))
    states = np.array(
        [entry["state"] for entry in corpus["counterexamples"]], dtype=float
    ).reshape(-1, env.state_dim)
    in_region = states[env.init_region.contains_batch(states)]
    if in_region.shape[0] == 0:
        pytest.skip("no in-region counterexamples recorded")
    assert batch_reaches_unsafe(env, unstable, in_region, REPLAY_HORIZON).any()


FUZZ_CORPUS_FILES = sorted((DATA_DIR / "fuzz").glob("*.json"))


def test_fuzz_corpus_exists():
    assert FUZZ_CORPUS_FILES, (
        "fuzz reproducer corpus is missing; `repro fuzz --corpus "
        "tests/data/counterexamples/fuzz` persists shrunk divergences there"
    )


@pytest.mark.parametrize("path", FUZZ_CORPUS_FILES, ids=lambda p: p.stem)
def test_fuzz_reproducer_property_now_holds(path):
    """Every committed fuzz reproducer witnessed a real divergence that has
    since been fixed: replaying it must report the property as holding."""
    from repro.fuzz import replay_reproducer

    message = replay_reproducer(path)
    assert message is None, (
        f"fuzz reproducer {path.name} still diverges: {message}"
    )


def test_tier1_session_corpus_replays_when_present(store):
    """If a tier-1 recording session persisted counterexamples, replay the
    trajectory-kind ones against the stored shield of the same environment."""
    path = DATA_DIR / "tier1_counterexamples.json"
    if not path.exists():
        pytest.skip("no tier-1 session corpus recorded (set REPRO_RECORD_CEX to create one)")
    corpus = json.loads(path.read_text())
    available = {entry.environment: entry.key for entry in store.list()}
    checked = 0
    for env_name, entries in corpus.get("environments", {}).items():
        if env_name not in available:
            continue
        env = make_environment(env_name)
        artifact = store.get(available[env_name])
        states = np.array(
            [e["state"] for e in entries if e.get("kind") == "trajectory"], dtype=float
        ).reshape(-1, env.state_dim)
        if states.size == 0:
            continue
        covered = artifact.invariant.holds_batch(states)
        if not covered.any():
            continue
        assert not batch_reaches_unsafe(
            env, artifact.program, states[covered], REPLAY_HORIZON
        ).any()
        checked += 1
    if checked == 0:
        pytest.skip("tier-1 corpus has no replayable states for stored environments")
