"""Property tests: the batched rollout engine is equivalent to the scalar reference.

The batched engine (``repro.runtime.batched``) must reproduce the sequential
``run_episode_scalar`` semantics exactly: same initial states under the same
seed, same per-step rewards, same unsafe/steady bookkeeping, and — for
shielded campaigns — the same per-episode intervention counts.  These tests
pin that contract on a linear (satellite) and a nonlinear (pendulum)
environment, plus the per-layer batch primitives the engine is built from.
"""

import numpy as np
import pytest

from repro.baselines import make_lqr_policy
from repro.core import Shield
from repro.envs import make_environment
from repro.envs.registry import BENCHMARKS
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.policies import LinearPolicy
from repro.runtime import (
    EvaluationProtocol,
    evaluate_policy,
    evaluate_policy_scalar,
    run_episode_scalar,
)

EQUIVALENCE_ENVS = ("satellite", "pendulum")


def _make_shield(env, neural_policy, measure_time=False):
    gains = {"satellite": [[-2.5, -2.0]], "pendulum": [[-12.05, -5.87]]}
    program = AffineProgram(gain=gains[env.name], names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.diag([1.0, 0.5])) - 0.2,
        names=env.state_names,
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=env.state_names)
    return Shield(
        env=env,
        neural_policy=neural_policy,
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=measure_time,
    )


def _episode_signature(episode):
    return (
        episode.steps,
        episode.unsafe_steps,
        episode.interventions,
        episode.steps_to_steady,
    )


class TestBatchedScalarEquivalence:
    @pytest.mark.parametrize("name", EQUIVALENCE_ENVS)
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_single_episode_matches_scalar(self, name, seed):
        """episodes=1 through the batched engine == the scalar reference."""
        env = make_environment(name)
        policy = make_lqr_policy(env)
        scalar = run_episode_scalar(
            env, policy, steps=120, rng=np.random.default_rng(seed)
        )
        protocol = EvaluationProtocol(episodes=1, steps=120, seed=seed)
        batched = evaluate_policy(env, policy, protocol).episodes[0]
        assert _episode_signature(scalar) == _episode_signature(batched)
        assert scalar.total_reward == pytest.approx(batched.total_reward, rel=1e-12)

    @pytest.mark.parametrize("name", EQUIVALENCE_ENVS)
    def test_campaign_matches_scalar_when_disturbance_free(self, name):
        """Without disturbances the whole-campaign generator streams coincide."""
        env = make_environment(name)
        assert env.disturbance_bound is None
        policy = make_lqr_policy(env)
        protocol = EvaluationProtocol(episodes=6, steps=100, seed=3)
        scalar = evaluate_policy_scalar(env, policy, protocol)
        batched = evaluate_policy(env, policy, protocol)
        for s, b in zip(scalar.episodes, batched.episodes):
            assert _episode_signature(s) == _episode_signature(b)
            assert s.total_reward == pytest.approx(b.total_reward, rel=1e-12)

    @pytest.mark.parametrize("name", EQUIVALENCE_ENVS)
    def test_shielded_campaign_matches_scalar(self, name):
        """Per-episode interventions and rewards survive batching exactly."""
        env = make_environment(name)
        destabilising = LinearPolicy(gain=4.0 * np.ones((env.action_dim, env.state_dim)))
        shield = _make_shield(env, destabilising)
        protocol = EvaluationProtocol(episodes=4, steps=150, seed=5)
        scalar = evaluate_policy_scalar(env, shield, protocol, shield=shield)
        shield_b = _make_shield(env, destabilising)
        batched = evaluate_policy(env, shield_b, protocol, shield=shield_b)
        assert scalar.interventions > 0  # the override path must be exercised
        assert [e.interventions for e in scalar.episodes] == [
            e.interventions for e in batched.episodes
        ]
        for s, b in zip(scalar.episodes, batched.episodes):
            assert _episode_signature(s) == _episode_signature(b)
            assert s.total_reward == pytest.approx(b.total_reward, rel=1e-10)

    @pytest.mark.parametrize("name", EQUIVALENCE_ENVS)
    def test_simulate_batch_states_match_simulate(self, name):
        env = make_environment(name)
        policy = make_lqr_policy(env)
        scalar = env.simulate(policy, steps=80, rng=np.random.default_rng(11))
        batch = env.simulate_batch(policy, episodes=1, steps=80, rng=np.random.default_rng(11))
        np.testing.assert_allclose(batch.states[0], scalar.states, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(batch.rewards[0], scalar.rewards, rtol=1e-10, atol=1e-12)
        assert int(batch.unsafe_step_counts[0]) == scalar.unsafe_steps


class TestBatchPrimitives:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_rate_batch_matches_rate_numeric(self, name):
        """Every registered benchmark's vectorised dynamics agree row-wise."""
        env = make_environment(name)
        rng = np.random.default_rng(0)
        states = env.domain.sample(rng, 16)
        actions = rng.uniform(-1.0, 1.0, size=(16, env.action_dim))
        batched = env.rate_batch(states, actions)
        rows = np.stack([env.rate_numeric(s, a) for s, a in zip(states, actions)])
        np.testing.assert_allclose(batched, rows, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_reward_batch_matches_reward(self, name):
        env = make_environment(name)
        rng = np.random.default_rng(1)
        states = env.domain.sample(rng, 16)
        actions = rng.uniform(-1.0, 1.0, size=(16, env.action_dim))
        batched = env.reward_batch(states, actions)
        rows = np.array([env.reward(s, a) for s, a in zip(states, actions)])
        np.testing.assert_allclose(batched, rows, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_step_and_unsafe_and_steady_batch(self, name):
        env = make_environment(name)
        rng = np.random.default_rng(2)
        states = env.domain.sample(rng, 8)
        actions = rng.uniform(-1.0, 1.0, size=(8, env.action_dim))
        batched = env.predict_batch(states, actions)
        rows = np.stack([env.predict(s, a) for s, a in zip(states, actions)])
        np.testing.assert_allclose(batched, rows, rtol=1e-10, atol=1e-12)
        np.testing.assert_array_equal(
            env.is_unsafe_batch(states), [env.is_unsafe(s) for s in states]
        )
        np.testing.assert_array_equal(
            env.is_steady_batch(states), [env.is_steady(s) for s in states]
        )

    def test_sample_initial_states_matches_sequential_stream(self):
        env = make_environment("satellite")
        block = env.sample_initial_states(np.random.default_rng(9), 5)
        rng = np.random.default_rng(9)
        rows = np.stack([env.sample_initial_state(rng) for _ in range(5)])
        np.testing.assert_array_equal(block, rows)

    def test_guarded_program_act_batch_matches_act(self):
        env = make_environment("pendulum")
        inner = Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - 0.1)
        outer = Invariant(barrier=Polynomial.quadratic_form(0.25 * np.eye(2)) - 0.5)
        program = GuardedProgram(
            branches=[
                (inner, AffineProgram(gain=[[-3.0, -1.0]])),
                (outer, AffineProgram(gain=[[-8.0, -4.0]])),
            ]
        )
        rng = np.random.default_rng(3)
        # Include states outside both invariants: the lenient closest-branch
        # selection must also match row-for-row.
        states = rng.uniform(-3.0, 3.0, size=(64, 2))
        batched = program.act_batch(states)
        rows = np.stack([program.act(s) for s in states])
        np.testing.assert_allclose(batched, rows, rtol=1e-12, atol=1e-12)

    def test_shield_decide_batch_matches_scalar_decisions(self):
        env = make_environment("pendulum")
        destabilising = LinearPolicy(gain=np.array([[6.0, 2.0]]))
        scalar_shield = _make_shield(env, destabilising)
        batch_shield = _make_shield(env, destabilising)
        rng = np.random.default_rng(4)
        states = env.safe_box.sample(rng, 32)
        actions, intervened = batch_shield.decide_batch(states)
        rows = np.stack([scalar_shield.act(s) for s in states])
        np.testing.assert_allclose(actions, rows, rtol=1e-10, atol=1e-12)
        assert intervened.any() and not intervened.all()
        assert batch_shield.statistics.decisions == 32
        assert batch_shield.statistics.interventions == scalar_shield.statistics.interventions
