"""Tests for the baseline controllers (repro.baselines): LQR, MPC, finite-abstraction shield."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_environment
from repro.baselines import (
    FiniteAbstractionConfig,
    FiniteAbstractionShield,
    MPCConfig,
    MPCController,
    linearize,
    lqr_gain,
    make_lqr_policy,
)
from repro.lang import AffineProgram


@pytest.fixture(scope="module")
def pendulum():
    return make_environment("pendulum")


@pytest.fixture(scope="module")
def satellite():
    return make_environment("satellite")


# ------------------------------------------------------------------------------ LQR
class TestLQR:
    def test_lqr_stabilises_linear_benchmark(self, satellite):
        policy = make_lqr_policy(satellite)
        start = np.asarray(satellite.init_region.high)
        trajectory = satellite.simulate(policy, steps=400, initial_state=start)
        assert trajectory.unsafe_steps == 0
        assert np.linalg.norm(trajectory.states[-1]) < 0.5 * np.linalg.norm(start)

    def test_linearize_matches_exact_for_linear_env(self, satellite):
        a_exact, b_exact = satellite.linear_matrices()
        a_est, b_est = linearize(satellite)
        np.testing.assert_allclose(a_est, a_exact, atol=1e-9)
        np.testing.assert_allclose(b_est, b_exact, atol=1e-9)

    def test_linearize_nonlinear_pendulum(self, pendulum):
        a, b = linearize(pendulum)
        # d(omega_dot)/d(eta) = g/l at the origin; d(omega_dot)/d(a) = 1/(m l^2).
        assert a[1, 0] == pytest.approx(9.8 / pendulum.length, rel=1e-3)
        assert b[1, 0] == pytest.approx(1.0 / (pendulum.mass * pendulum.length**2), rel=1e-3)

    def test_lqr_gain_riccati_solution_is_positive_definite(self, satellite):
        a, b = satellite.linear_matrices()
        result = lqr_gain(a, b)
        eigenvalues = np.linalg.eigvalsh(result.riccati)
        assert np.all(eigenvalues > 0)


# ------------------------------------------------------------------------------ MPC
class TestMPC:
    def test_rejects_bad_horizon(self, pendulum):
        with pytest.raises(ValueError, match="horizon"):
            MPCController(pendulum, MPCConfig(horizon=0))

    def test_plan_shape_and_bounds(self, pendulum):
        controller = MPCController(pendulum, MPCConfig(horizon=5))
        plan = controller.plan(np.array([0.2, 0.0]))
        assert plan.shape == (5, pendulum.action_dim)
        action = controller.act(np.array([0.2, 0.0]))
        assert np.all(action >= pendulum.action_low - 1e-9)
        assert np.all(action <= pendulum.action_high + 1e-9)

    def test_mpc_regulates_simple_integrator(self):
        env = _easy_integrator()
        controller = MPCController(env, MPCConfig(horizon=8, max_optimizer_iterations=25))
        state = np.array([0.8])
        for _ in range(40):
            state = env.step(state, controller.act(state))
        assert np.abs(state[0]) < 0.1

    def test_mpc_keeps_pendulum_safe(self, pendulum):
        # The receding horizon is deliberately short (myopic), so we only require
        # safety and boundedness here, not fast regulation.
        controller = MPCController(
            pendulum, MPCConfig(horizon=8, max_optimizer_iterations=25)
        )
        state = np.array([0.2, 0.0])
        for _ in range(150):
            state = pendulum.step(state, controller.act(state))
            assert not pendulum.is_unsafe(state)
        assert np.abs(state[0]) <= 0.25

    def test_warm_start_reuses_previous_plan(self, pendulum):
        controller = MPCController(pendulum, MPCConfig(horizon=4, warm_start=True))
        controller.act(np.array([0.1, 0.0]))
        assert controller._previous_plan is not None
        controller.reset()
        assert controller._previous_plan is None

    def test_mpc_is_slower_than_synthesized_program(self, pendulum):
        """The per-decision cost gap the ablation benchmark quantifies."""
        import time

        program = AffineProgram(gain=[[-12.05, -5.87]])
        controller = MPCController(pendulum, MPCConfig(horizon=8))
        state = np.array([0.15, 0.0])

        start = time.perf_counter()
        for _ in range(5):
            controller.act(state)
        mpc_time = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(5):
            program.act(state)
        program_time = time.perf_counter() - start
        assert mpc_time > program_time


# ----------------------------------------------------------------- finite abstraction
def _easy_integrator():
    """A 1D single integrator ``ẋ = a`` — easy enough for a coarse abstraction."""
    from repro.certificates import Box
    from repro.envs import LinearEnvironment

    return LinearEnvironment(
        a_matrix=[[0.0]],
        b_matrix=[[1.0]],
        init_region=Box((-0.5,), (0.5,)),
        safe_box=Box((-1.0,), (1.0,)),
        domain=Box((-2.0,), (2.0,)),
        dt=0.1,
        action_low=[-1.0],
        action_high=[1.0],
    )


class TestFiniteAbstractionShield:
    @pytest.fixture(scope="class")
    def easy_env(self):
        return _easy_integrator()

    @pytest.fixture(scope="class")
    def easy_abstraction(self, easy_env):
        return FiniteAbstractionShield(
            easy_env, FiniteAbstractionConfig(cells_per_dim=9, actions_per_dim=5)
        )

    @pytest.fixture(scope="class")
    def pendulum_abstraction(self, pendulum):
        return FiniteAbstractionShield(
            pendulum, FiniteAbstractionConfig(cells_per_dim=9, actions_per_dim=5)
        )

    def test_rejects_too_fine_grid(self):
        env = make_environment("8_car_platoon")
        with pytest.raises(ValueError, match="explosion"):
            FiniteAbstractionShield(env, FiniteAbstractionConfig(cells_per_dim=8, max_cells=10_000))

    def test_rejects_degenerate_config(self):
        with pytest.raises(ValueError, match="cells_per_dim"):
            FiniteAbstractionConfig(cells_per_dim=1)
        with pytest.raises(ValueError, match="actions_per_dim"):
            FiniteAbstractionConfig(actions_per_dim=1)

    def test_grid_size_bookkeeping(self, easy_abstraction):
        assert easy_abstraction.num_cells == 9
        assert easy_abstraction.num_abstract_actions == 5
        assert 0.0 < easy_abstraction.safe_cell_fraction <= 1.0
        assert "cells=9" in easy_abstraction.describe()

    def test_cell_index_inside_and_outside(self, easy_abstraction, easy_env):
        assert easy_abstraction.cell_index(np.zeros(1)) is not None
        assert easy_abstraction.cell_index(np.asarray(easy_env.domain.high) * 10.0) is None

    def test_origin_is_abstractly_safe_on_easy_system(self, easy_abstraction):
        assert easy_abstraction.is_abstractly_safe(np.zeros(1))
        assert easy_abstraction.safe_action_for(np.zeros(1)) is not None
        assert easy_abstraction.covers_initial_states(samples=100)

    def test_unsafe_region_is_not_safe(self, easy_abstraction, easy_env):
        corner = np.asarray(easy_env.domain.high) * 0.99
        assert easy_env.is_unsafe(corner)
        assert not easy_abstraction.is_abstractly_safe(corner)

    def test_shielded_policy_prevents_failures_on_easy_system(self, easy_abstraction, easy_env):
        # A policy that races towards the unsafe region fails unshielded but is
        # kept safe by the abstract shield.
        bad_policy = AffineProgram(gain=[[0.0]], bias=[1.0])
        shielded = easy_abstraction.shield_policy(bad_policy)
        state = np.array([0.0])
        bare_state = state.copy()
        for _ in range(200):
            state = easy_env.step(state, shielded(state))
            bare_state = easy_env.step(bare_state, bad_policy(bare_state))
        assert easy_env.is_unsafe(bare_state)
        assert not easy_env.is_unsafe(state)
        assert easy_abstraction.interventions > 0
        assert easy_abstraction.decisions == 200

    def test_pendulum_abstraction_is_too_coarse_to_be_useful(self, pendulum_abstraction):
        """The §6 claim: at tractable resolutions the finite abstraction of a
        continuous benchmark over-approximates so aggressively that its maximal
        safe set collapses (here: to the empty set), whereas the paper's symbolic
        shield certifies a non-trivial invariant for the same system."""
        assert pendulum_abstraction.safe_cell_fraction < 0.05
        assert not pendulum_abstraction.covers_initial_states(samples=50)

    def test_shield_falls_back_to_proposal_outside_safe_set(self, pendulum_abstraction, pendulum):
        policy = AffineProgram(gain=[[-12.05, -5.87]])
        shielded = pendulum_abstraction.shield_policy(policy)
        state = np.array([0.1, 0.0])
        action = shielded(state)
        np.testing.assert_allclose(action, policy.act(state))
