"""Tests for disturbance models and runtime estimation (repro.envs.disturbance)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import (
    BoundedUniformDisturbance,
    DisturbanceEstimator,
    SinusoidalDisturbance,
    TruncatedGaussianDisturbance,
    ZeroDisturbance,
    collect_residuals,
    make_environment,
    simulate_with_disturbance,
)
from repro.lang import AffineProgram


@pytest.fixture(scope="module")
def pendulum():
    return make_environment("pendulum")


@pytest.fixture(scope="module")
def pendulum_controller():
    # The paper's synthesized pendulum program; any stabilising gain works here.
    return AffineProgram(gain=[[-12.05, -5.87]], names=("eta", "omega"))


# --------------------------------------------------------------------------- models
class TestDisturbanceModels:
    def test_zero_disturbance(self):
        model = ZeroDisturbance(dim=3)
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(model.sample(rng, 0), np.zeros(3))
        np.testing.assert_array_equal(model.bound(), np.zeros(3))

    def test_uniform_respects_bound(self):
        model = BoundedUniformDisturbance(magnitude=[0.5, 0.2])
        rng = np.random.default_rng(1)
        samples = np.array([model.sample(rng, k) for k in range(500)])
        assert np.all(np.abs(samples) <= model.bound() + 1e-12)
        # Both dimensions actually vary.
        assert samples.std(axis=0).min() > 0.01

    def test_uniform_negative_magnitude_is_absolute(self):
        model = BoundedUniformDisturbance(magnitude=[-0.3])
        assert model.bound()[0] == pytest.approx(0.3)

    def test_truncated_gaussian_respects_bound(self):
        model = TruncatedGaussianDisturbance(mean=[0.1, -0.1], std=[0.05, 0.02], truncation=2.0)
        rng = np.random.default_rng(2)
        samples = np.array([model.sample(rng, k) for k in range(500)])
        bound = model.bound()
        assert np.all(np.abs(samples) <= bound + 1e-12)
        assert bound[0] == pytest.approx(0.1 + 2.0 * 0.05)

    def test_truncated_gaussian_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="same shape"):
            TruncatedGaussianDisturbance(mean=[0.0, 0.0], std=[0.1])

    def test_truncated_gaussian_nonpositive_truncation_raises(self):
        with pytest.raises(ValueError, match="truncation"):
            TruncatedGaussianDisturbance(mean=[0.0], std=[0.1], truncation=0.0)

    def test_sinusoidal_is_periodic_and_bounded(self):
        model = SinusoidalDisturbance(amplitude=[0.2, 0.0], period=50.0)
        rng = np.random.default_rng(3)
        values = np.array([model.sample(rng, k) for k in range(200)])
        assert np.all(np.abs(values) <= model.bound() + 1e-12)
        np.testing.assert_allclose(values[0], values[50], atol=1e-12)
        # Second dimension has zero amplitude.
        assert np.allclose(values[:, 1], 0.0)

    def test_sinusoidal_bad_period_raises(self):
        with pytest.raises(ValueError, match="period"):
            SinusoidalDisturbance(amplitude=[0.1], period=0.0)

    def test_sinusoidal_jitter_included_in_bound(self):
        model = SinusoidalDisturbance(amplitude=[0.1], period=10.0, jitter=0.05)
        assert model.bound()[0] == pytest.approx(0.15)

    @settings(max_examples=25, deadline=None)
    @given(
        magnitude=st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False), min_size=1, max_size=4
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_uniform_samples_within_bound(self, magnitude, seed):
        model = BoundedUniformDisturbance(magnitude=magnitude)
        rng = np.random.default_rng(seed)
        for step in range(20):
            sample = model.sample(rng, step)
            assert np.all(np.abs(sample) <= model.bound() + 1e-12)


# --------------------------------------------------------------------------- batched
class TestBatchedSampling:
    def test_zero_batch_shape_and_values(self):
        model = ZeroDisturbance(dim=3)
        batch = model.sample_batch(np.random.default_rng(0), 0, 5)
        assert batch.shape == (5, 3)
        assert not batch.any()

    def test_uniform_batch_matches_scalar_stream(self):
        """rng.uniform draws coordinates in the same order row-wise or blocked."""
        model = BoundedUniformDisturbance(magnitude=[0.5, 0.2])
        block = model.sample_batch(np.random.default_rng(7), 0, 6)
        rng = np.random.default_rng(7)
        rows = np.stack([model.sample(rng, 0) for _ in range(6)])
        np.testing.assert_array_equal(block, rows)

    def test_gaussian_batch_respects_bound(self):
        model = TruncatedGaussianDisturbance(mean=[0.1, -0.1], std=[0.05, 0.02], truncation=2.0)
        batch = model.sample_batch(np.random.default_rng(1), 0, 400)
        assert batch.shape == (400, 2)
        assert np.all(np.abs(batch) <= model.bound() + 1e-12)
        assert batch.std(axis=0).min() > 1e-3

    def test_sinusoidal_batch_broadcasts_shared_parameters(self):
        model = SinusoidalDisturbance(amplitude=[0.2, 0.1], period=50.0)
        rng = np.random.default_rng(2)
        batch = model.sample_batch(rng, 13, 4)
        expected = model.sample(np.random.default_rng(2), 13)
        for row in batch:
            np.testing.assert_allclose(row, expected, atol=1e-12)

    def test_sinusoidal_fleet_has_per_episode_phases(self):
        rng = np.random.default_rng(3)
        model = SinusoidalDisturbance.fleet(
            amplitude=[0.3], episodes=8, rng=rng, period=40.0, period_spread=0.25
        )
        assert model.episodes == 8
        batch = model.sample_batch(rng, 5, 8)
        assert batch.shape == (8, 1)
        # Distinct phases/periods: the rows cannot all coincide.
        assert np.unique(np.round(batch, 9)).size > 1
        assert np.all(np.abs(batch) <= model.bound() + 1e-12)

    def test_sinusoidal_fleet_rejects_scalar_sample_and_wrong_width(self):
        model = SinusoidalDisturbance.fleet(
            amplitude=[0.1, 0.1], episodes=4, rng=np.random.default_rng(4)
        )
        with pytest.raises(ValueError, match="sample_batch"):
            model.sample(np.random.default_rng(0), 0)
        with pytest.raises(ValueError, match="4 episodes"):
            model.sample_batch(np.random.default_rng(0), 0, 3)

    def test_generic_fallback_stacks_scalar_samples(self):
        from repro.envs import DisturbanceModel

        class ConstantModel(DisturbanceModel):
            dim = 2

            def sample(self, rng, step):
                return np.array([float(step), 1.0])

        batch = ConstantModel().sample_batch(np.random.default_rng(0), 3, 4)
        np.testing.assert_array_equal(batch, np.tile([3.0, 1.0], (4, 1)))

    def test_make_disturbance_kinds(self):
        from repro.envs import DISTURBANCE_KINDS, make_disturbance

        for kind in DISTURBANCE_KINDS:
            model = make_disturbance(kind, dim=2, magnitude=0.2, episodes=3,
                                     rng=np.random.default_rng(0))
            batch = model.sample_batch(np.random.default_rng(1), 0, 3)
            assert batch.shape == (3, 2)
            assert np.all(np.abs(batch) <= model.bound() + 1e-12)
        with pytest.raises(ValueError, match="unknown disturbance kind"):
            make_disturbance("tornado", dim=2)


# -------------------------------------------------------------------------- rollouts
class TestSimulateWithDisturbance:
    def test_zero_disturbance_matches_nominal(self, pendulum, pendulum_controller):
        start = np.array([0.1, -0.05])
        disturbed = simulate_with_disturbance(
            pendulum,
            pendulum_controller,
            ZeroDisturbance(dim=2),
            steps=50,
            rng=np.random.default_rng(0),
            initial_state=start,
        )
        nominal = pendulum.simulate(
            pendulum_controller, steps=50, rng=None, initial_state=start
        )
        np.testing.assert_allclose(disturbed.states, nominal.states, atol=1e-10)

    def test_dimension_mismatch_raises(self, pendulum, pendulum_controller):
        with pytest.raises(ValueError, match="dimension"):
            simulate_with_disturbance(
                pendulum, pendulum_controller, ZeroDisturbance(dim=5), steps=5
            )

    def test_disturbed_rollout_stays_finite(self, pendulum, pendulum_controller):
        trajectory = simulate_with_disturbance(
            pendulum,
            pendulum_controller,
            BoundedUniformDisturbance(magnitude=[0.2, 0.2]),
            steps=200,
            rng=np.random.default_rng(1),
            initial_state=np.array([0.1, 0.0]),
        )
        assert np.isfinite(trajectory.states).all()
        assert len(trajectory.states) == 201

    def test_disturbance_changes_the_trajectory(self, pendulum, pendulum_controller):
        start = np.array([0.1, 0.0])
        nominal = pendulum.simulate(pendulum_controller, steps=100, initial_state=start)
        disturbed = simulate_with_disturbance(
            pendulum,
            pendulum_controller,
            BoundedUniformDisturbance(magnitude=[0.5, 0.5]),
            steps=100,
            rng=np.random.default_rng(2),
            initial_state=start,
        )
        assert not np.allclose(nominal.states, disturbed.states)


# ------------------------------------------------------------------------ estimation
class TestDisturbanceEstimator:
    def test_needs_at_least_two_samples(self):
        estimator = DisturbanceEstimator(state_dim=2)
        estimator.observe([0.1, 0.0])
        with pytest.raises(ValueError, match="at least two"):
            estimator.estimate()

    def test_estimates_mean_and_bound_of_known_noise(self):
        rng = np.random.default_rng(4)
        estimator = DisturbanceEstimator(state_dim=2, confidence_sigmas=3.0)
        true_mean = np.array([0.05, -0.02])
        true_std = np.array([0.01, 0.03])
        for _ in range(2000):
            estimator.observe(rng.normal(true_mean, true_std))
        estimate = estimator.estimate()
        np.testing.assert_allclose(estimate.mean, true_mean, atol=5e-3)
        np.testing.assert_allclose(estimate.std, true_std, rtol=0.15)
        assert np.all(estimate.bound >= np.abs(true_mean))
        assert "samples=2000" in estimate.describe()

    def test_reset_clears_observations(self):
        estimator = DisturbanceEstimator(state_dim=1)
        estimator.observe([0.1])
        estimator.observe([0.2])
        assert len(estimator) == 2
        estimator.reset()
        assert len(estimator) == 0

    def test_collect_residuals_recovers_injected_disturbance(self, pendulum, pendulum_controller):
        model = BoundedUniformDisturbance(magnitude=[0.3, 0.3])
        trajectory = simulate_with_disturbance(
            pendulum,
            pendulum_controller,
            model,
            steps=100,
            rng=np.random.default_rng(5),
            initial_state=np.array([0.05, 0.0]),
        )
        residuals = collect_residuals(pendulum, trajectory)
        assert residuals.shape == (100, 2)
        # Every recovered residual must respect the injected model's bound.
        assert np.all(np.abs(residuals) <= model.bound() + 1e-6)

    def test_observe_trajectory_and_apply_to(self, pendulum, pendulum_controller):
        model = TruncatedGaussianDisturbance(mean=[0.0, 0.0], std=[0.05, 0.05])
        estimator = DisturbanceEstimator(state_dim=2)
        for seed in range(3):
            trajectory = simulate_with_disturbance(
                pendulum,
                pendulum_controller,
                model,
                steps=80,
                rng=np.random.default_rng(seed),
                initial_state=np.array([0.05, 0.0]),
            )
            added = estimator.observe_trajectory(pendulum, trajectory)
            assert added == 80
        env = make_environment("pendulum")
        bound = estimator.apply_to(env, floor=1e-3)
        np.testing.assert_array_equal(env.disturbance_bound, bound)
        assert np.all(bound >= 1e-3)
        # The 3-sigma bound should cover the true truncated support (±0.15) loosely.
        assert np.all(bound <= model.bound() * 1.5)

    def test_collect_residuals_empty_trajectory(self, pendulum):
        from repro.envs import Trajectory

        empty = Trajectory(
            states=np.zeros((1, 2)), actions=np.zeros((0, 1)), rewards=np.zeros(0)
        )
        residuals = collect_residuals(pendulum, empty)
        assert residuals.shape == (0, 2)
