"""Sharded fleet execution: worker-count invariance, merging, and plumbing.

The sharded runtime's contract is that the *worker count is unobservable*:
``workers=1`` (in-process) and ``workers=N`` (fork pool) execute the identical
shard plan under identical per-shard seed streams, so every counter — unsafe
steps, interventions, steady-at indices, monitor mismatches, invariant
excursions, barrier peaks — and every merged artifact (rewards, disturbance
estimates, shield statistics) must be bit-identical.  These tests pin that
contract across registry environments, disturbed and monitored fleets, odd
episode counts, and the float32 workspace mode, plus the shard plan and
shared-memory arena mechanics underneath.
"""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.compile.stepper import RolloutWorkspace
from repro.core import Shield
from repro.envs import make_disturbance, make_environment
from repro.envs.disturbance import DisturbanceEstimator
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.networks import MLP
from repro.rl.policies import NeuralPolicy
from repro.runtime.batched import BatchedCampaign
from repro.shard import (
    DEFAULT_SHARDS,
    ShardPool,
    create_arena,
    disturbance_estimate_from_moments,
    merge_moments,
    monitor_fleet_sharded,
    plan_shards,
    run_sharded_campaign,
)

#: Six cheap registry environments spanning 2-7 state dimensions.
IDENTITY_ENVS = ("satellite", "dcmotor", "tape", "pendulum", "cartpole", "oscillator")

CAMPAIGN_FIELDS = ("total_rewards", "unsafe_counts", "interventions", "steady_at")
MONITOR_FIELDS = (
    "interventions",
    "model_mismatches",
    "invariant_excursions",
    "unsafe_steps",
    "peak_barrier_values",
    "final_states",
)


def _make_shield(env, seed=0):
    rng = np.random.default_rng(seed)
    d, m = env.state_dim, env.action_dim
    scale = env.action_high if env.action_high is not None else np.ones(m)
    network = MLP(d, (24, 16), m, output_scale=scale, seed=seed)
    program = AffineProgram(gain=rng.normal(scale=0.2, size=(m, d)), names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(d)) - 0.5, names=env.state_names
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=env.state_names)
    return Shield(
        env=env,
        neural_policy=NeuralPolicy(network),
        program=guarded,
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


def _linear_policy(env, seed=0):
    rng = np.random.default_rng(seed)
    return AffineProgram(
        gain=rng.normal(scale=0.2, size=(env.action_dim, env.state_dim)),
        names=env.state_names,
    )


# -------------------------------------------------------------------- the plan
class TestShardPlan:
    def test_plan_covers_every_episode_exactly_once(self):
        for episodes in (1, 2, 7, 8, 9, 37, 100):
            for shards in (None, 1, 3, 5, 8, 200):
                plan = plan_shards(episodes, shards)
                assert plan[0].start == 0
                assert plan[-1].stop == episodes
                for left, right in zip(plan, plan[1:]):
                    assert left.stop == right.start
                widths = [shard.episodes for shard in plan]
                assert max(widths) - min(widths) <= 1
                assert sum(widths) == episodes

    def test_shard_count_clamps_to_fleet_and_defaults(self):
        assert len(plan_shards(3, None)) == 3
        assert len(plan_shards(100, None)) == DEFAULT_SHARDS
        assert len(plan_shards(5, 200)) == 5

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(0)
        with pytest.raises(ValueError):
            plan_shards(10, 0)

    def test_seed_streams_are_distinct_and_reproducible(self):
        plan_a = plan_shards(40, 4, seed=123)
        plan_b = plan_shards(40, 4, seed=123)
        draws_a = [np.random.default_rng(s.seed).integers(0, 2**32) for s in plan_a]
        draws_b = [np.random.default_rng(s.seed).integers(0, 2**32) for s in plan_b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == len(draws_a)


# ------------------------------------------------------------------- the arena
class TestShardArena:
    def test_private_arena_round_trip(self):
        arena = create_arena(
            [("a", (5,), np.float64), ("b", (3, 2), np.int64)], shared=False
        )
        arena.view("a")[:] = np.arange(5.0)
        arena.view("b")[:] = 7
        taken = arena.take()
        arena.destroy()
        assert np.array_equal(taken["a"], np.arange(5.0))
        assert np.array_equal(taken["b"], np.full((3, 2), 7))

    def test_fields_are_cache_line_aligned(self):
        arena = create_arena(
            [("a", (3,), np.float64), ("b", (3,), np.int64), ("c", (1,), np.float64)],
            shared=False,
        )
        try:
            for field in arena.spec.fields:
                assert field.offset % 64 == 0
        finally:
            arena.destroy()


# ------------------------------------------------- worker-count bit-identity
class TestWorkerCountInvariance:
    @pytest.mark.parametrize("name", IDENTITY_ENVS)
    def test_campaign_counters_identical_across_worker_counts(self, name):
        env = make_environment(name)
        policy = _linear_policy(env)
        # 19 episodes over 5 shards: uneven widths (4,4,4,4,3).
        reference = run_sharded_campaign(
            env, policy=policy, episodes=19, steps=15, seed=11, workers=1, shards=5
        )
        for workers in (2, 4):
            other = run_sharded_campaign(
                env, policy=policy, episodes=19, steps=15, seed=11, workers=workers, shards=5
            )
            for field in CAMPAIGN_FIELDS:
                assert np.array_equal(
                    getattr(reference, field), getattr(other, field)
                ), f"{name}: {field} differs at workers={workers}"

    @pytest.mark.parametrize("name", ("pendulum", "oscillator"))
    def test_shielded_campaign_and_shield_statistics_identical(self, name):
        env = make_environment(name)
        results, statistics = [], []
        for workers in (1, 2, 4):
            shield = _make_shield(env)
            results.append(
                run_sharded_campaign(
                    env, shield=shield, episodes=13, steps=12, seed=3, workers=workers, shards=4
                )
            )
            statistics.append(
                (shield.statistics.decisions, shield.statistics.interventions)
            )
        for other in results[1:]:
            for field in CAMPAIGN_FIELDS:
                assert np.array_equal(getattr(results[0], field), getattr(other, field))
        assert statistics[0] == statistics[1] == statistics[2]
        assert statistics[0][0] > 0  # the fold actually carried decisions across

    @pytest.mark.parametrize("kind", ("none", "uniform", "sinusoidal"))
    def test_monitored_fleet_identical_under_disturbance(self, kind):
        env = make_environment("pendulum")
        reports = []
        for workers in (1, 2, 4):
            shield = _make_shield(env)
            model = (
                None
                if kind == "none"
                else make_disturbance(
                    kind,
                    env.state_dim,
                    magnitude=0.05,
                    episodes=17,
                    rng=np.random.default_rng(5),
                )
            )
            reports.append(
                monitor_fleet_sharded(
                    shield,
                    episodes=17,  # odd width over 4 shards: (5,4,4,4)
                    steps=14,
                    seed=13,
                    disturbance=model,
                    workers=workers,
                    shards=4,
                )
            )
        for other in reports[1:]:
            for field in MONITOR_FIELDS:
                assert np.array_equal(
                    getattr(reports[0], field), getattr(other, field)
                ), f"{field} differs"
            left, right = reports[0].disturbance_estimate, other.disturbance_estimate
            assert (left is None) == (right is None)
            if left is not None:
                assert np.array_equal(left.mean, right.mean)
                assert np.array_equal(left.covariance, right.covariance)
                assert np.array_equal(left.bound, right.bound)
                assert left.samples == right.samples

    def test_monitored_per_episode_disturbance_width_checked(self):
        env = make_environment("pendulum")
        shield = _make_shield(env)
        model = make_disturbance(
            "sinusoidal", env.state_dim, episodes=10, rng=np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="10 episodes"):
            monitor_fleet_sharded(shield, episodes=12, steps=5, seed=0, disturbance=model)

    def test_interpreted_mode_matches_itself_across_workers(self):
        # With compilation off, shards fall back to the interpreted engine —
        # worker-count invariance must hold there too.
        from repro.compile import set_compilation

        env = make_environment("satellite")
        policy = _linear_policy(env)
        set_compilation(False)
        try:
            a = run_sharded_campaign(
                env, policy=policy, episodes=9, steps=10, seed=2, workers=1, shards=3
            )
            b = run_sharded_campaign(
                env, policy=policy, episodes=9, steps=10, seed=2, workers=2, shards=3
            )
        finally:
            set_compilation(True)
        for field in CAMPAIGN_FIELDS:
            assert np.array_equal(getattr(a, field), getattr(b, field))

    def test_returns_identical_across_worker_counts(self):
        env = make_environment("dcmotor")
        policy = _linear_policy(env)
        with ShardPool(env, policy=policy, workers=1, shards=5) as pool:
            reference = pool.run_returns(23, 20, seed=9)
        with ShardPool(env, policy=policy, workers=3, shards=5) as pool:
            other = pool.run_returns(23, 20, seed=9)
        assert np.array_equal(reference.total_rewards, other.total_rewards)

    def test_pool_reuse_across_runs_is_deterministic(self):
        env = make_environment("pendulum")
        policy = _linear_policy(env)
        with ShardPool(env, policy=policy, workers=2, shards=4) as pool:
            first = pool.run_campaign(11, 10, seed=21)
            second = pool.run_campaign(11, 10, seed=21)
        for field in CAMPAIGN_FIELDS:
            assert np.array_equal(getattr(first, field), getattr(second, field))


# ------------------------------------------- agreement with the batched engine
class TestShardedVsUnsharded:
    @pytest.mark.parametrize("name", ("satellite", "cartpole"))
    def test_explicit_initial_states_reproduce_the_batched_engine(self, name):
        # Dynamics are deterministic given the initial states, so pinning them
        # makes sharded and single-stream campaigns directly comparable.
        env = make_environment(name)
        policy = _linear_policy(env)
        states = env.sample_initial_states(np.random.default_rng(4), 15)
        plain = BatchedCampaign(env=env, policy=policy, steps=12)
        rewards, unsafe, interventions, steady, _ = plain.run_arrays(
            15, np.random.default_rng(0), initial_states=states.copy()
        )
        sharded = run_sharded_campaign(
            env,
            policy=policy,
            episodes=15,
            steps=12,
            seed=0,
            workers=2,
            shards=4,
            initial_states=states.copy(),
        )
        assert np.array_equal(sharded.total_rewards, rewards)
        assert np.array_equal(sharded.unsafe_counts, unsafe)
        assert np.array_equal(sharded.interventions, interventions)
        assert np.array_equal(sharded.steady_at, steady)

    def test_metrics_package_matches_batched_conventions(self):
        env = make_environment("pendulum")
        result = run_sharded_campaign(
            env, policy=_linear_policy(env), episodes=8, steps=10, seed=1, workers=1
        )
        metrics = result.metrics()
        assert len(metrics.episodes) == 8
        assert metrics.failures == result.failures
        summary = result.summary()
        assert summary["episodes"] == 8
        assert summary["shard_stats"]["shards"] == len(summary["shard_stats"]["shard_episodes"])


# -------------------------------------------------------------- moment merging
class TestMomentMerging:
    def test_merged_moments_match_single_estimator(self):
        rng = np.random.default_rng(7)
        residuals = rng.normal(scale=0.1, size=(60, 3))
        whole = DisturbanceEstimator(3)
        whole.observe_batch(residuals)
        reference = whole.estimate()
        shards = []
        for start, stop in ((0, 21), (21, 40), (40, 60)):
            part = DisturbanceEstimator(3)
            part.observe_batch(residuals[start:stop])
            shards.append(part.moments())
        count, total, outer = merge_moments(shards, 3)
        merged = disturbance_estimate_from_moments(count, total, outer)
        assert merged.samples == reference.samples
        np.testing.assert_allclose(merged.mean, reference.mean, rtol=0, atol=1e-12)
        np.testing.assert_allclose(
            merged.covariance, reference.covariance, rtol=0, atol=1e-12
        )

    def test_merge_is_order_fixed_and_skips_empty_shards(self):
        count, total, outer = merge_moments([None, (0, np.zeros(2), np.zeros((2, 2)))], 2)
        assert count == 0
        assert disturbance_estimate_from_moments(count, total, outer) is None

    def test_below_two_samples_yields_no_estimate(self):
        assert disturbance_estimate_from_moments(1, np.ones(2), np.eye(2)) is None


# ------------------------------------------------------------ float32 fleets
class TestFloat32Workspaces:
    def test_float32_counters_match_float64_on_stable_fleets(self):
        env = make_environment("pendulum")
        policy = _linear_policy(env)
        f64 = run_sharded_campaign(
            env, policy=policy, episodes=13, steps=12, seed=6, workers=2, shards=4
        )
        f32 = run_sharded_campaign(
            env,
            policy=policy,
            episodes=13,
            steps=12,
            seed=6,
            workers=2,
            shards=4,
            dtype=np.float32,
        )
        assert f32.stats["dtype"] == "float32"
        for field in ("unsafe_counts", "interventions", "steady_at"):
            assert np.array_equal(getattr(f64, field), getattr(f32, field))
        np.testing.assert_allclose(f32.total_rewards, f64.total_rewards, rtol=1e-4, atol=1e-3)

    def test_non_float_dtype_rejected(self):
        from repro.compile import compile_stepper

        env = make_environment("pendulum")
        with pytest.raises(ValueError, match="float type"):
            compile_stepper(env, policy=_linear_policy(env), dtype=np.int64)


# -------------------------------------------------------- workspace buffering
class TestRolloutWorkspaceBuffers:
    def test_same_shape_reuses_the_same_buffer(self):
        ws = RolloutWorkspace()
        first = ws.array("states", (8, 3))
        second = ws.array("states", (8, 3))
        assert first.base is second.base

    def test_shrinking_shape_reuses_grown_buffer(self):
        # The episode-count thrash: alternating fleet widths must not
        # re-allocate once the largest width has been seen.
        ws = RolloutWorkspace()
        big = ws.array("states", (16, 3))
        small = ws.array("states", (4, 3))
        big_again = ws.array("states", (16, 3))
        assert small.base is big.base
        assert big_again.base is big.base
        assert len(ws) == 1

    def test_distinct_dtypes_get_distinct_buffers(self):
        ws = RolloutWorkspace()
        doubles = ws.array("states", (8, 2))
        floats = ws.array("states", (8, 2), dtype=np.float32)
        assert doubles.dtype == np.float64
        assert floats.dtype == np.float32
        assert doubles.base is not floats.base
        assert len(ws) == 2

    def test_default_dtype_follows_the_workspace(self):
        ws = RolloutWorkspace(default_dtype=np.float32)
        assert ws.array("scratch", (4,)).dtype == np.float32


# ------------------------------------------------------------------ CLI knobs
class TestCLIWorkersKnob:
    def test_run_and_monitor_accept_worker_flags(self):
        parser = build_parser()
        for command in ("run", "monitor"):
            args = parser.parse_args(
                [command, "pendulum", "--workers", "2", "--shards", "3", "--float32"]
            )
            assert args.workers == 2
            assert args.shards == 3
            assert args.float32 is True

    def test_experiments_accept_workers(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--workers", "4"])
        assert args.workers == 4
        args = parser.parse_args(["robustness", "--workers", "2"])
        assert args.workers == 2

    def test_workers_default_keeps_legacy_path(self):
        parser = build_parser()
        args = parser.parse_args(["monitor", "pendulum"])
        assert args.workers is None


# ----------------------------------------------------------------- pool misc
class TestShardPoolContracts:
    def test_policy_and_shield_both_set_rejected(self):
        env = make_environment("pendulum")
        with pytest.raises(ValueError, match="not both"):
            ShardPool(env, policy=_linear_policy(env), shield=_make_shield(env))

    def test_returns_requires_policy_and_monitor_requires_shield(self):
        env = make_environment("pendulum")
        with ShardPool(env, shield=_make_shield(env)) as pool:
            with pytest.raises(ValueError, match="policy"):
                pool.run_returns(4, 5)
        with ShardPool(env, policy=_linear_policy(env)) as pool:
            with pytest.raises(ValueError, match="shield"):
                pool.run_monitored(4, 5)

    def test_closed_pool_refuses_work(self):
        env = make_environment("pendulum")
        pool = ShardPool(env, policy=_linear_policy(env))
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_campaign(4, 5, seed=0)

    def test_bad_initial_state_shape_rejected(self):
        env = make_environment("pendulum")
        with ShardPool(env, policy=_linear_policy(env)) as pool:
            with pytest.raises(ValueError, match="shape"):
                pool.run_campaign(6, 5, seed=0, initial_states=np.zeros((3, env.state_dim)))
