"""Tests for the runtime monitor (repro.runtime.monitor)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_environment
from repro.core import Shield
from repro.envs import BoundedUniformDisturbance, simulate_with_disturbance
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.runtime import RuntimeMonitor, monitor_episode


def _pendulum_shield(neural_gain, invariant_level=0.25):
    """A hand-built shield for the pendulum: program + circular invariant."""
    env = make_environment("pendulum")
    program = AffineProgram(gain=[[-12.05, -5.87]], names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(2)) - invariant_level,
        names=env.state_names,
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=env.state_names)
    neural = AffineProgram(gain=neural_gain, names=env.state_names)
    shield = Shield(
        env=env,
        neural_policy=neural,
        program=guarded,
        invariant=InvariantUnion([invariant]),
    )
    return env, shield


class TestRuntimeMonitor:
    def test_records_every_decision(self):
        env, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]])
        monitor = RuntimeMonitor(shield)
        state = np.array([0.1, 0.0])
        for _ in range(10):
            action = monitor.act(state)
            state = env.step(state, action)
            monitor.observe_transition(state)
        report = monitor.report()
        assert report.decisions == 10
        assert shield.statistics.decisions == 10
        assert report.interventions == 0
        assert report.invariant_excursions == 0

    def test_intervention_detected_for_destabilising_network(self):
        # A neural policy that accelerates the fall: the shield must intervene.
        env, shield = _pendulum_shield(neural_gain=[[30.0, 10.0]], invariant_level=0.05)
        monitor = RuntimeMonitor(shield)
        state = np.array([0.2, 0.1])
        for _ in range(30):
            action = monitor.act(state)
            state = env.step(state, action)
            monitor.observe_transition(state)
        report = monitor.report()
        assert report.interventions > 0
        assert report.intervention_rate > 0.0
        assert report.intervention_states().shape[1] == 2
        # Without disturbances the model prediction is exact, so even when the
        # hand-made invariant is left, the monitor never reports a *mismatch*
        # between the predicted and the observed successor.
        assert report.model_mismatches == 0

    def test_observe_before_act_raises(self):
        _, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]])
        monitor = RuntimeMonitor(shield)
        with pytest.raises(RuntimeError, match="before any decision"):
            monitor.observe_transition(np.zeros(2))

    def test_reset_clears_state(self):
        env, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]])
        monitor = RuntimeMonitor(shield)
        state = np.array([0.05, 0.0])
        action = monitor.act(state)
        monitor.observe_transition(env.step(state, action))
        monitor.reset()
        assert monitor.report().decisions == 0

    def test_summary_fields(self):
        env, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]])
        report = monitor_episode(shield, steps=20, rng=np.random.default_rng(0))
        summary = report.summary()
        assert set(summary) >= {
            "decisions",
            "interventions",
            "intervention_rate",
            "model_mismatches",
            "invariant_excursions",
            "mean_decision_seconds",
        }
        assert summary["decisions"] == 20

    def test_empty_report(self):
        _, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]])
        report = RuntimeMonitor(shield).report()
        assert report.decisions == 0
        assert report.intervention_rate == 0.0
        assert report.mean_decision_seconds == 0.0


class TestMismatchAttribution:
    """Regression tests: mismatch is judged on the *executed* action's prediction."""

    def test_model_mismatch_fires_on_intervened_steps(self):
        # The neural action's predicted successor leaves phi (so the shield
        # intervenes), the program's predicted successor stays inside, and the
        # deliberately wrong reality below leaves phi anyway: the monitor must
        # report a model mismatch for the executed (program) action.
        env, shield = _pendulum_shield(neural_gain=[[30.0, 10.0]], invariant_level=0.05)
        monitor = RuntimeMonitor(shield)
        state = np.array([0.2, 0.05])
        monitor.act(state)
        record = monitor.records[-1]
        assert record.intervened
        assert record.predicted_next_in_invariant  # the executed action's verdict
        monitor.observe_transition(np.array([2.0, 2.0]))  # unmodelled reality
        report = monitor.report()
        assert report.model_mismatches == 1
        assert report.invariant_excursions == 1

    def test_intervened_record_reports_program_prediction_verdict(self):
        # Same setup, but reality follows the program's prediction: in phi, no
        # mismatch, no excursion.
        env, shield = _pendulum_shield(neural_gain=[[30.0, 10.0]], invariant_level=0.05)
        monitor = RuntimeMonitor(shield)
        state = np.array([0.2, 0.05])
        action = monitor.act(state)
        monitor.observe_transition(env.predict(state, action))
        report = monitor.report()
        assert report.interventions == 1
        assert report.model_mismatches == 0
        assert report.invariant_excursions == 0

    def test_non_intervened_path_predicts_once(self):
        env, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]])
        calls = {"count": 0}
        original = env.predict

        def counting_predict(state, action):
            calls["count"] += 1
            return original(state, action)

        env.predict = counting_predict
        monitor = RuntimeMonitor(shield)
        monitor.act(np.array([0.1, 0.0]))
        assert not monitor.records[-1].intervened
        assert calls["count"] == 1

    def test_monitor_accumulates_shield_timers(self):
        env, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]])
        monitor = RuntimeMonitor(shield)
        state = np.array([0.1, 0.0])
        for _ in range(5):
            action = monitor.act(state)
            state = env.step(state, action)
            monitor.observe_transition(state)
        assert shield.statistics.neural_seconds > 0.0
        assert shield.statistics.shield_seconds > 0.0
        assert shield.statistics.overhead > 0.0

    def test_monitor_respects_measure_time_flag(self):
        env, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]])
        shield.measure_time = False
        monitor = RuntimeMonitor(shield)
        monitor.act(np.array([0.1, 0.0]))
        assert shield.statistics.neural_seconds == 0.0
        assert shield.statistics.shield_seconds == 0.0


class TestDisturbanceFeedback:
    def test_estimates_disturbance_from_observed_transitions(self):
        env, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]])
        monitor = RuntimeMonitor(shield, estimate_disturbance=True)
        model = BoundedUniformDisturbance(magnitude=[0.3, 0.3])
        rng = np.random.default_rng(1)
        state = np.array([0.05, 0.0])
        for step in range(200):
            action = monitor.act(state)
            rate = env.rate_numeric(state, action) + model.sample(rng, step)
            state = state + env.dt * rate
            monitor.observe_transition(state)
        report = monitor.report()
        assert report.disturbance_estimate is not None
        # The 3-sigma estimate should be of the same order as the injected bound.
        assert np.all(report.disturbance_estimate.bound <= 0.6)
        assert np.all(report.disturbance_estimate.bound >= 0.05)

    def test_no_estimate_without_feedback(self):
        _, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]])
        monitor = RuntimeMonitor(shield, estimate_disturbance=False)
        state = np.array([0.05, 0.0])
        monitor.act(state)
        monitor.observe_transition(state)
        assert monitor.report().disturbance_estimate is None

    def test_model_mismatch_detected_under_large_disturbance(self):
        # Inject a disturbance far larger than anything the invariant was built
        # for: the monitor should flag excursions / mismatches rather than hide them.
        env, shield = _pendulum_shield(neural_gain=[[-12.0, -6.0]], invariant_level=0.02)
        monitor = RuntimeMonitor(shield)
        rng = np.random.default_rng(2)
        state = np.array([0.1, 0.05])
        kick = np.array([0.0, 60.0])  # persistent unmodelled torque disturbance
        for _ in range(50):
            action = monitor.act(state)
            rate = env.rate_numeric(state, action) + kick
            state = state + env.dt * rate
            monitor.observe_transition(state)
        report = monitor.report()
        assert report.invariant_excursions > 0
