"""Tests for the persistent shield artifact store (repro.store).

The load(save(x)) == x property is checked over randomly generated sketch
instantiations (seeded generator, 200+ cases), and corrupted/truncated store
objects must fail with clean :class:`StoreError`/:class:`ArtifactError`
messages rather than surfacing JSON internals or garbage artifacts.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CEGISConfig, SynthesisConfig, VerificationConfig
from repro.lang import (
    AffineSketch,
    ArtifactError,
    Invariant,
    InvariantUnion,
    GuardedProgram,
    PolynomialSketch,
    ShieldArtifact,
    program_fingerprint,
    program_to_dict,
)
from repro.polynomials import Polynomial, monomial_basis
from repro.store import ShieldStore, StoreError, config_hash


# ------------------------------------------------------------------ generators
def _random_sketch_program(
    rng: np.random.Generator, state_dim: int | None = None, action_dim: int | None = None
):
    """A random instantiation of a random program sketch (affine or polynomial)."""
    state_dim = state_dim if state_dim is not None else int(rng.integers(1, 5))
    action_dim = action_dim if action_dim is not None else int(rng.integers(1, 3))
    if rng.random() < 0.5:
        sketch = AffineSketch(
            state_dim=state_dim,
            action_dim=action_dim,
            include_bias=bool(rng.random() < 0.5),
        )
    else:
        sketch = PolynomialSketch(
            state_dim=state_dim, action_dim=action_dim, degree=int(rng.integers(1, 4))
        )
    theta = rng.normal(scale=3.0, size=sketch.num_parameters)
    return sketch.instantiate(theta)


def _random_invariant(rng: np.random.Generator, state_dim: int) -> Invariant:
    basis = monomial_basis(state_dim, 2)
    poly = Polynomial.from_coefficients(rng.normal(size=len(basis)), basis, state_dim)
    return Invariant(barrier=poly, margin=float(rng.normal()))


def _random_artifact(rng: np.random.Generator) -> ShieldArtifact:
    branches = []
    state_dim = int(rng.integers(1, 5))
    action_dim = int(rng.integers(1, 3))
    for _ in range(int(rng.integers(1, 4))):
        program = _random_sketch_program(rng, state_dim=state_dim, action_dim=action_dim)
        branches.append((_random_invariant(rng, state_dim), program))
    guarded = GuardedProgram(branches=branches)
    return ShieldArtifact(
        program=guarded,
        invariant=InvariantUnion([invariant for invariant, _ in branches]),
        # Non-registry labels: these sketches have random dimensions, so a
        # resolvable environment name would (correctly) trip the put-time
        # static analyzer's dimension checks.  Round-trip tests only need the
        # label itself to survive, not a real environment behind it.
        environment=str(rng.choice(["bench_a", "bench_b", "bench_c", ""])),
        metadata={
            "seed": int(rng.integers(0, 100)),
            "config_hash": f"{int(rng.integers(0, 2**32)):08x}",
            "program_size": len(branches),
        },
    )


@pytest.fixture()
def store(tmp_path) -> ShieldStore:
    return ShieldStore(tmp_path / "store")


# ------------------------------------------------------------------ round trip
class TestStoreRoundTrip:
    def test_property_round_trip_200_random_sketch_instantiations(self, store):
        rng = np.random.default_rng(42)
        seen_keys = set()
        for _ in range(200):
            artifact = _random_artifact(rng)
            key = store.put(artifact)
            seen_keys.add(key)
            restored = store.get(key)
            assert program_to_dict(restored.program) == program_to_dict(artifact.program)
            assert program_fingerprint(restored.program) == program_fingerprint(
                artifact.program
            )
            assert len(restored.invariant) == len(artifact.invariant)
            assert restored.environment == artifact.environment
            assert restored.metadata == artifact.metadata
        assert len(store.list()) == len(seen_keys)

    def test_round_trip_preserves_behaviour(self, store):
        rng = np.random.default_rng(7)
        artifact = _random_artifact(rng)
        restored = store.get(store.put(artifact))
        states = rng.normal(size=(25, artifact.program.branches[0][1].state_dim))
        for invariant, restored_invariant in zip(
            artifact.invariant, restored.invariant
        ):
            np.testing.assert_allclose(
                restored_invariant.value_batch(states), invariant.value_batch(states)
            )

    def test_put_is_idempotent_and_content_addressed(self, store):
        rng = np.random.default_rng(3)
        artifact = _random_artifact(rng)
        key1 = store.put(artifact)
        key2 = store.put(artifact)
        assert key1 == key2
        assert len(store.list()) == 1

    def test_different_artifacts_get_different_keys(self, store):
        rng = np.random.default_rng(4)
        keys = {store.put(_random_artifact(rng)) for _ in range(10)}
        assert len(keys) == 10


# -------------------------------------------------------------------- lookups
class TestStoreLookup:
    def test_get_by_unique_prefix(self, store):
        key = store.put(_random_artifact(np.random.default_rng(0)))
        assert store.resolve(key[:12]) == key
        assert program_to_dict(store.get(key[:12]).program) == program_to_dict(
            store.get(key).program
        )

    def test_too_short_prefix_rejected(self, store):
        store.put(_random_artifact(np.random.default_rng(0)))
        with pytest.raises(StoreError, match="too short"):
            store.resolve("abc")

    def test_missing_key_raises(self, store):
        with pytest.raises(StoreError, match="no stored shield"):
            store.get("0" * 64)

    def test_find_by_environment_config_hash_and_seed(self, store):
        rng = np.random.default_rng(5)
        artifacts = [_random_artifact(rng) for _ in range(8)]
        for artifact in artifacts:
            store.put(artifact)
        wanted = artifacts[3]
        matches = store.find(
            environment=wanted.environment,
            config_hash=wanted.metadata["config_hash"],
            seed=wanted.metadata["seed"],
        )
        assert any(
            entry.metadata["config_hash"] == wanted.metadata["config_hash"]
            for entry in matches
        )
        assert store.find(environment="no_such_env") == []

    def test_delete(self, store):
        key = store.put(_random_artifact(np.random.default_rng(1)))
        store.delete(key[:12])
        assert store.list() == []
        with pytest.raises(StoreError):
            store.get(key)


# ----------------------------------------------------------------- corruption
class TestStoreCorruption:
    def _object_path(self, store: ShieldStore):
        entries = store.list()
        assert entries
        return entries[0].path, entries[0].key

    def test_truncated_object_raises_clean_error(self, store):
        store.put(_random_artifact(np.random.default_rng(2)))
        path, key = self._object_path(store)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(StoreError, match="corrupt|truncated"):
            store.get(key)

    def test_binary_garbage_raises_clean_error(self, store):
        store.put(_random_artifact(np.random.default_rng(2)))
        path, key = self._object_path(store)
        path.write_bytes(b"\x00\xff\xfe not json at all")
        with pytest.raises(StoreError):
            store.get(key)

    def test_tampered_payload_fails_integrity_check(self, store):
        store.put(_random_artifact(np.random.default_rng(2)))
        path, key = self._object_path(store)
        wrapper = json.loads(path.read_text())
        wrapper["artifact"]["metadata"]["seed"] = 424242
        path.write_text(json.dumps(wrapper))
        with pytest.raises(StoreError, match="corrupt"):
            store.get(key)

    def test_missing_artifact_field_raises(self, store):
        store.put(_random_artifact(np.random.default_rng(2)))
        path, key = self._object_path(store)
        path.write_text(json.dumps({"key": key, "saved_at": 0.0}))
        with pytest.raises(StoreError, match="not a"):
            store.get(key)

    def test_artifact_error_is_value_error(self):
        assert issubclass(ArtifactError, ValueError)
        assert issubclass(StoreError, ValueError)


# ---------------------------------------------------------------- config hash
class TestConfigHash:
    def test_stable_across_calls(self):
        config = CEGISConfig(seed=3)
        assert config_hash(config) == config_hash(CEGISConfig(seed=3))

    def test_sensitive_to_nested_fields(self):
        base = CEGISConfig()
        assert config_hash(base) != config_hash(CEGISConfig(seed=1))
        assert config_hash(base) != config_hash(
            CEGISConfig(synthesis=SynthesisConfig(iterations=99))
        )
        assert config_hash(base) != config_hash(
            CEGISConfig(verification=VerificationConfig(invariant_degree=4))
        )

    def test_short_hex_digest(self):
        digest = config_hash(CEGISConfig())
        assert len(digest) == 16
        int(digest, 16)  # must be valid hex
