"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.lang import (
    AffineProgram,
    GuardedProgram,
    Invariant,
    InvariantUnion,
    ShieldArtifact,
    save_artifact,
)
from repro.polynomials import Polynomial


@pytest.fixture()
def pendulum_artifact(tmp_path):
    """A small hand-built (but safety-plausible) artifact for CLI round trips."""
    program = AffineProgram(gain=[[-12.05, -5.87]], names=("eta", "omega"))
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.diag([1.0, 0.5])) - 0.2, names=("eta", "omega")
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=("eta", "omega"))
    artifact = ShieldArtifact(
        program=guarded,
        invariant=InvariantUnion([invariant]),
        environment="pendulum",
    )
    return save_artifact(artifact, tmp_path / "pendulum_shield.json")


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_synthesize_defaults(self):
        args = build_parser().parse_args(["synthesize", "pendulum"])
        assert args.env == "pendulum"
        assert args.oracle == "cloned"
        assert args.episodes == 5

    def test_experiment_scale_choices(self):
        args = build_parser().parse_args(["table1", "--scale", "medium"])
        assert args.scale == "medium"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "enormous"])


class TestListAndDescribe:
    def test_list_prints_benchmarks(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "pendulum" in output
        assert "8_car_platoon" in output

    def test_describe_prints_specification(self, capsys):
        assert main(["describe", "pendulum"]) == 0
        output = capsys.readouterr().out
        assert "pendulum" in output
        assert "dt" in output

    def test_describe_with_overrides(self, capsys):
        assert main(["describe", "pendulum", "--overrides", '{"safe_angle_deg": 30.0}']) == 0
        assert "pendulum" in capsys.readouterr().out

    def test_describe_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["describe", "warp_drive"])


class TestEvaluateAndAudit:
    def test_evaluate_saved_artifact(self, pendulum_artifact, capsys):
        code = main(
            [
                "evaluate",
                str(pendulum_artifact),
                "--episodes",
                "2",
                "--steps",
                "40",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out.split("loaded artifact")[1].split("\n", 1)[1])
        assert summary["shielded"]["episodes"] == 2
        assert "overhead" in summary

    def test_audit_saved_artifact_runs(self, pendulum_artifact, capsys):
        code = main(["audit", str(pendulum_artifact), "--max-boxes", "5000"])
        output = capsys.readouterr().out
        assert "branch 0" in output
        assert "audit result:" in output
        assert code in (0, 1)

    def test_evaluate_without_environment_fails(self, tmp_path, capsys):
        program = AffineProgram(gain=[[-1.0, -1.0]], names=("x", "y"))
        invariant = Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - 1.0)
        artifact = ShieldArtifact(
            program=GuardedProgram(branches=[(invariant, program)]),
            invariant=InvariantUnion([invariant]),
            environment="",
        )
        path = save_artifact(artifact, tmp_path / "anonymous.json")
        assert main(["evaluate", str(path)]) == 2
        assert "pass --env" in capsys.readouterr().err


class TestSynthesizeCommand:
    def test_synthesize_satellite_end_to_end(self, tmp_path, capsys):
        output_path = tmp_path / "satellite_shield.json"
        code = main(
            [
                "synthesize",
                "satellite",
                "--synthesis-iterations",
                "3",
                "--episodes",
                "2",
                "--steps",
                "40",
                "--output",
                str(output_path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "synthesized program" in printed
        assert "def P(" in printed
        assert output_path.exists()
        saved = json.loads(output_path.read_text())
        assert saved["environment"] == "satellite"
        assert saved["program"]["kind"] == "guarded"


# ------------------------------------------------------------------------ store
class TestStoreCommands:
    CORPUS_STORE = "tests/data/counterexamples/store"

    @pytest.fixture()
    def tmp_store(self, tmp_path, pendulum_artifact):
        from repro.lang import load_artifact
        from repro.store import ShieldStore

        store = ShieldStore(tmp_path / "store")
        key = store.put(load_artifact(pendulum_artifact))
        return store, key

    def test_store_list_empty(self, tmp_path, capsys):
        assert main(["store", "--store", str(tmp_path / "empty"), "list"]) == 0
        assert "no stored shields" in capsys.readouterr().out

    def test_store_list_corpus(self, capsys):
        assert main(["store", "--store", self.CORPUS_STORE, "list"]) == 0
        output = capsys.readouterr().out
        assert "satellite" in output
        assert "config_hash" in output

    def test_store_show_by_prefix(self, tmp_store, capsys):
        store, key = tmp_store
        assert main(["store", "--store", str(store.root), "show", key[:8]]) == 0
        output = capsys.readouterr().out
        assert "pendulum" in output
        assert "def P(" in output

    def test_store_export_round_trips(self, tmp_store, tmp_path, capsys):
        from repro.lang import load_artifact

        store, key = tmp_store
        output_path = tmp_path / "exported.json"
        assert main(
            ["store", "--store", str(store.root), "export", key[:12], str(output_path)]
        ) == 0
        assert load_artifact(output_path).environment == "pendulum"

    def test_store_rm(self, tmp_store, capsys):
        store, key = tmp_store
        assert main(["store", "--store", str(store.root), "rm", key[:12]]) == 0
        assert store.list() == []

    def test_store_unknown_key_exits_2(self, tmp_store, capsys):
        store, _key = tmp_store
        assert main(["store", "--store", str(store.root), "show", "deadbeef"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_store_verify_corpus_shield(self, capsys):
        from repro.store import ShieldStore

        key = ShieldStore(self.CORPUS_STORE).find(environment="satellite")[0].key
        assert main(["store", "--store", self.CORPUS_STORE, "verify", key]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_monitor_parser_defaults(self):
        args = build_parser().parse_args(["monitor", "satellite"])
        assert args.env == "satellite"
        assert args.disturbance == "none"
        assert args.episodes == 50
        with pytest.raises(SystemExit):
            build_parser().parse_args(["monitor", "satellite", "--disturbance", "tornado"])

    def test_adapt_parser_defaults(self):
        args = build_parser().parse_args(
            ["adapt", "satellite", "--disturbance", "uniform", "--magnitude", "0.1"]
        )
        assert args.disturbance == "uniform"
        assert args.magnitude == pytest.approx(0.1)
        assert args.confidence_sigmas == pytest.approx(3.0)

    def test_robustness_parser_accepts_kinds(self):
        args = build_parser().parse_args(
            ["robustness", "satellite", "--kinds", "uniform", "gaussian", "--magnitude", "0.2"]
        )
        assert args.experiment == "robustness"
        assert args.kinds == ["uniform", "gaussian"]
        assert args.magnitude == pytest.approx(0.2)

    def test_monitor_satellite_fleet(self, capsys):
        code = main(
            [
                "monitor",
                "satellite",
                "--episodes",
                "3",
                "--steps",
                "40",
                "--synthesis-iterations",
                "3",
                "--disturbance",
                "uniform",
                "--magnitude",
                "0.03",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        summary = json.loads("{" + output.split("{", 1)[1])
        assert summary["episodes"] == 3
        assert summary["decisions"] == 120
        assert summary["disturbance_bound"] is not None

    def test_adapt_satellite_certificate_still_valid(self, tmp_path, capsys):
        code = main(
            [
                "adapt",
                "satellite",
                "--episodes",
                "3",
                "--steps",
                "40",
                "--synthesis-iterations",
                "3",
                "--disturbance",
                "uniform",
                "--magnitude",
                "0.01",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "certificate: still valid" in output

    def test_synthesize_parser_accepts_service_flags(self):
        args = build_parser().parse_args(
            ["synthesize", "pendulum", "--workers", "4", "--no-replay-cache", "--store"]
        )
        assert args.workers == 4
        assert args.no_replay_cache
        assert args.store == ""

    def test_experiment_parser_accepts_store(self):
        args = build_parser().parse_args(["table1", "--store", "mystore"])
        assert args.store == "mystore"


# ----------------------------------------------------------------------- verify
class TestVerifyCommand:
    @pytest.fixture()
    def synthesized_store(self, tmp_path):
        """A real store entry (satellite, LQR oracle) to re-verify via the CLI."""
        from repro.baselines import make_lqr_policy
        from repro.core import (
            CEGISConfig,
            DistanceConfig,
            SynthesisConfig,
            VerificationConfig,
        )
        from repro.envs import make_environment
        from repro.store import ShieldStore, SynthesisService

        env = make_environment("satellite")
        service = SynthesisService(store=ShieldStore(tmp_path / "store"))
        config = CEGISConfig(
            synthesis=SynthesisConfig(
                iterations=5,
                distance=DistanceConfig(num_trajectories=2, trajectory_length=50),
                seed=0,
            ),
            verification=VerificationConfig(backend="lyapunov"),
            max_counterexamples=4,
        )
        result = service.synthesize(
            env, make_lqr_policy(env), config=config, environment="satellite"
        )
        return str(tmp_path / "store"), result.key

    def test_verify_parser_defaults_and_backend_choices(self):
        args = build_parser().parse_args(["verify", "abcdef12"])
        assert args.backend == "auto"
        assert not args.no_cache
        for backend in ("lyapunov", "sos", "barrier", "farkas"):
            parsed = build_parser().parse_args(["verify", "abcdef12", "--backend", backend])
            assert parsed.backend == backend

    def test_verify_unknown_backend_exits_2_listing_registry(
        self, synthesized_store, capsys
    ):
        store, key = synthesized_store
        assert main(["verify", key[:12], "--backend", "nonsense", "--store", store]) == 2
        error = capsys.readouterr().err
        assert "unknown verification backend" in error
        assert "farkas" in error

    def test_verify_stored_shield_prints_provenance(self, synthesized_store, capsys):
        store, key = synthesized_store
        assert main(["verify", key[:12], "--store", store]) == 0
        output = capsys.readouterr().out
        assert "VERIFIED" in output
        assert "backend=lyapunov" in output
        assert "wall_clock=" in output
        assert "verdict cache:" in output
        assert "kernel re-verification: PASS" in output

    def test_verify_second_invocation_hits_the_verdict_cache(
        self, synthesized_store, capsys
    ):
        store, key = synthesized_store
        assert main(["verify", key[:12], "--store", store]) == 0
        capsys.readouterr()
        assert main(["verify", key[:12], "--store", store]) == 0
        output = capsys.readouterr().out
        assert "[cached]" in output
        assert "1 hit(s)" in output

    def test_verify_with_named_backend(self, synthesized_store, capsys):
        store, key = synthesized_store
        assert main(["verify", key[:12], "--backend", "sos", "--store", store]) == 0
        assert "backend=sos" in capsys.readouterr().out

    def test_verify_unknown_key_exits_2(self, synthesized_store, capsys):
        store, _key = synthesized_store
        assert main(["verify", "deadbeef", "--store", store]) == 2
        assert "error:" in capsys.readouterr().err

    def test_verify_without_store_flag_uses_default_store(
        self, synthesized_store, monkeypatch, capsys
    ):
        """No --store means $REPRO_STORE / ./.repro_store, like `repro store`."""
        store, key = synthesized_store
        monkeypatch.setenv("REPRO_STORE", store)
        assert main(["verify", key[:12]]) == 0
        assert "kernel re-verification: PASS" in capsys.readouterr().out
        monkeypatch.setenv("REPRO_STORE", store + "-missing")
        assert main(["verify", key[:12]]) == 2  # handled error, not a traceback
        assert "error:" in capsys.readouterr().err
