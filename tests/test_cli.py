"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.lang import (
    AffineProgram,
    GuardedProgram,
    Invariant,
    InvariantUnion,
    ShieldArtifact,
    save_artifact,
)
from repro.polynomials import Polynomial


@pytest.fixture()
def pendulum_artifact(tmp_path):
    """A small hand-built (but safety-plausible) artifact for CLI round trips."""
    program = AffineProgram(gain=[[-12.05, -5.87]], names=("eta", "omega"))
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.diag([1.0, 0.5])) - 0.2, names=("eta", "omega")
    )
    guarded = GuardedProgram(branches=[(invariant, program)], names=("eta", "omega"))
    artifact = ShieldArtifact(
        program=guarded,
        invariant=InvariantUnion([invariant]),
        environment="pendulum",
    )
    return save_artifact(artifact, tmp_path / "pendulum_shield.json")


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_synthesize_defaults(self):
        args = build_parser().parse_args(["synthesize", "pendulum"])
        assert args.env == "pendulum"
        assert args.oracle == "cloned"
        assert args.episodes == 5

    def test_experiment_scale_choices(self):
        args = build_parser().parse_args(["table1", "--scale", "medium"])
        assert args.scale == "medium"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "enormous"])


class TestListAndDescribe:
    def test_list_prints_benchmarks(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "pendulum" in output
        assert "8_car_platoon" in output

    def test_describe_prints_specification(self, capsys):
        assert main(["describe", "pendulum"]) == 0
        output = capsys.readouterr().out
        assert "pendulum" in output
        assert "dt" in output

    def test_describe_with_overrides(self, capsys):
        assert main(["describe", "pendulum", "--overrides", '{"safe_angle_deg": 30.0}']) == 0
        assert "pendulum" in capsys.readouterr().out

    def test_describe_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["describe", "warp_drive"])


class TestEvaluateAndAudit:
    def test_evaluate_saved_artifact(self, pendulum_artifact, capsys):
        code = main(
            [
                "evaluate",
                str(pendulum_artifact),
                "--episodes",
                "2",
                "--steps",
                "40",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out.split("loaded artifact")[1].split("\n", 1)[1])
        assert summary["shielded"]["episodes"] == 2
        assert "overhead" in summary

    def test_audit_saved_artifact_runs(self, pendulum_artifact, capsys):
        code = main(["audit", str(pendulum_artifact), "--max-boxes", "5000"])
        output = capsys.readouterr().out
        assert "branch 0" in output
        assert "audit result:" in output
        assert code in (0, 1)

    def test_evaluate_without_environment_fails(self, tmp_path, capsys):
        program = AffineProgram(gain=[[-1.0, -1.0]], names=("x", "y"))
        invariant = Invariant(barrier=Polynomial.quadratic_form(np.eye(2)) - 1.0)
        artifact = ShieldArtifact(
            program=GuardedProgram(branches=[(invariant, program)]),
            invariant=InvariantUnion([invariant]),
            environment="",
        )
        path = save_artifact(artifact, tmp_path / "anonymous.json")
        assert main(["evaluate", str(path)]) == 2
        assert "pass --env" in capsys.readouterr().err


class TestSynthesizeCommand:
    def test_synthesize_satellite_end_to_end(self, tmp_path, capsys):
        output_path = tmp_path / "satellite_shield.json"
        code = main(
            [
                "synthesize",
                "satellite",
                "--synthesis-iterations",
                "3",
                "--episodes",
                "2",
                "--steps",
                "40",
                "--output",
                str(output_path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "synthesized program" in printed
        assert "def P(" in printed
        assert output_path.exists()
        saved = json.loads(output_path.read_text())
        assert saved["environment"] == "satellite"
        assert saved["program"]["kind"] == "guarded"
