"""Tests for the RL additions: exploration noise and the TD3 trainer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_environment
from repro.rl import (
    GaussianActionNoise,
    OrnsteinUhlenbeckNoise,
    TD3Config,
    TD3Trainer,
    behaviour_clone,
)
from repro.baselines import make_lqr_policy


# ----------------------------------------------------------------------------- noise
class TestGaussianNoise:
    def test_dimension_from_scale(self):
        noise = GaussianActionNoise(scale=[0.1, 0.2, 0.3])
        assert noise.dim == 3

    def test_scale_controls_spread(self):
        rng = np.random.default_rng(0)
        small = GaussianActionNoise(scale=[0.01])
        large = GaussianActionNoise(scale=[1.0])
        small_samples = np.array([small.sample(rng) for _ in range(500)])
        large_samples = np.array([large.sample(rng) for _ in range(500)])
        assert small_samples.std() < large_samples.std()

    def test_negative_scale_is_absolute(self):
        noise = GaussianActionNoise(scale=[-0.5])
        assert noise.scale[0] == pytest.approx(0.5)

    def test_reset_is_a_noop(self):
        noise = GaussianActionNoise(scale=[0.1])
        noise.reset()  # must not raise


class TestOrnsteinUhlenbeckNoise:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="positive"):
            OrnsteinUhlenbeckNoise(sigma=[0.1], theta=0.0)
        with pytest.raises(ValueError, match="same dimension"):
            OrnsteinUhlenbeckNoise(sigma=[0.1, 0.2], mu=[0.0])

    def test_samples_are_temporally_correlated(self):
        rng = np.random.default_rng(1)
        ou = OrnsteinUhlenbeckNoise(sigma=[0.2], theta=0.15, dt=0.01)
        samples = np.array([ou.sample(rng)[0] for _ in range(2000)])
        gaussian = rng.normal(0.0, samples.std(), size=samples.size)
        ou_autocorr = np.corrcoef(samples[:-1], samples[1:])[0, 1]
        gaussian_autocorr = np.corrcoef(gaussian[:-1], gaussian[1:])[0, 1]
        assert ou_autocorr > 0.9
        assert abs(gaussian_autocorr) < 0.2

    def test_reset_returns_to_mean(self):
        rng = np.random.default_rng(2)
        ou = OrnsteinUhlenbeckNoise(sigma=[0.5], mu=[0.3])
        for _ in range(50):
            ou.sample(rng)
        ou.reset()
        assert ou._state[0] == pytest.approx(0.3)

    def test_mean_reversion(self):
        rng = np.random.default_rng(3)
        ou = OrnsteinUhlenbeckNoise(sigma=[0.05], theta=5.0, dt=0.05, mu=[1.0])
        samples = np.array([ou.sample(rng)[0] for _ in range(3000)])
        assert samples[-1000:].mean() == pytest.approx(1.0, abs=0.2)

    @settings(max_examples=20, deadline=None)
    @given(
        sigma=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_samples_are_finite(self, sigma, seed):
        rng = np.random.default_rng(seed)
        ou = OrnsteinUhlenbeckNoise(sigma=[sigma])
        for _ in range(100):
            assert np.isfinite(ou.sample(rng)).all()


# ------------------------------------------------------------------------------- TD3
class TestTD3Trainer:
    @pytest.fixture(scope="class")
    def pendulum(self):
        return make_environment("pendulum")

    def _quick_config(self, **overrides) -> TD3Config:
        defaults = dict(
            hidden_sizes=(16, 16),
            episodes=3,
            steps_per_episode=40,
            warmup_steps=20,
            batch_size=16,
            buffer_capacity=2_000,
            seed=0,
        )
        defaults.update(overrides)
        return TD3Config(**defaults)

    def test_training_produces_a_policy_with_correct_shapes(self, pendulum):
        trainer = TD3Trainer(pendulum, self._quick_config())
        policy, log = trainer.train()
        assert len(log.episode_returns) == 3
        action = policy(np.array([0.1, 0.0]))
        assert action.shape == (pendulum.action_dim,)
        assert np.all(np.abs(action) <= pendulum.action_high + 1e-9)

    def test_policy_delay_skips_actor_updates(self, pendulum):
        trainer = TD3Trainer(pendulum, self._quick_config(policy_delay=1_000_000))
        actor_before = trainer.actor.get_parameters().copy()
        policy, _ = trainer.train()
        # With an (absurdly) large delay the actor is never updated by the critic
        # signal, so its parameters are unchanged.
        np.testing.assert_allclose(policy.network.get_parameters(), actor_before)

    def test_critics_learn_different_parameters(self, pendulum):
        trainer = TD3Trainer(pendulum, self._quick_config())
        trainer.train()
        assert not np.allclose(
            trainer.critic_1.get_parameters(), trainer.critic_2.get_parameters()
        )

    def test_target_networks_track_online_networks(self, pendulum):
        trainer = TD3Trainer(pendulum, self._quick_config())
        trainer.train()
        gap = np.linalg.norm(
            trainer.target_actor.get_parameters() - trainer.actor.get_parameters()
        )
        assert np.isfinite(gap)
        assert gap < np.linalg.norm(trainer.actor.get_parameters()) + 1e-9

    def test_warm_started_td3_fine_tune_keeps_pendulum_safe(self, pendulum):
        """TD3 as a drop-in oracle fine-tuner: start from a cloned LQR actor and
        check the fine-tuned oracle still balances the pendulum."""
        teacher = make_lqr_policy(pendulum)
        cloned = behaviour_clone(pendulum, teacher, hidden_sizes=(16, 16), samples=500, epochs=60)
        trainer = TD3Trainer(pendulum, self._quick_config(exploration_noise=0.02))
        trainer.actor.set_parameters(cloned.network.get_parameters())
        trainer.target_actor.set_parameters(cloned.network.get_parameters())
        policy, _ = trainer.train()
        trajectory = pendulum.simulate(
            policy, steps=300, initial_state=np.array([0.1, 0.0]), rng=np.random.default_rng(0)
        )
        assert trajectory.unsafe_steps == 0

    def test_target_action_smoothing_respects_bounds(self, pendulum):
        trainer = TD3Trainer(pendulum, self._quick_config(target_noise=5.0, target_noise_clip=10.0))
        states = pendulum.safe_box.sample(np.random.default_rng(0), 32)
        smoothed = trainer._target_actions(states)
        assert np.all(smoothed >= pendulum.action_low - 1e-9)
        assert np.all(smoothed <= pendulum.action_high + 1e-9)