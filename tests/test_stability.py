"""Tests for the stability extension (repro.core.stability)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_environment
from repro.baselines import make_lqr_policy
from repro.core import (
    StableSynthesisConfig,
    SynthesisConfig,
    synthesize_stable_program,
    verify_stability,
)
from repro.lang import AffineProgram, ExprProgram, parse_expression


@pytest.fixture(scope="module")
def satellite():
    return make_environment("satellite")


@pytest.fixture(scope="module")
def pendulum():
    return make_environment("pendulum")


class TestVerifyStability:
    def test_lqr_gain_is_stable_on_linear_benchmark(self, satellite):
        program = AffineProgram(gain=make_lqr_policy(satellite).gain, names=satellite.state_names)
        result = verify_stability(satellite, program)
        assert result.stable
        certificate = result.certificate
        assert certificate is not None
        assert certificate.spectral_radius < 1.0
        assert certificate.nonlinear_decrease_verified
        # The Lyapunov value decreases along a trajectory from a corner of S0.
        start = np.asarray(satellite.init_region.high, dtype=float)
        trajectory = satellite.simulate(program, steps=200, initial_state=start)
        values = [certificate.lyapunov_value(s) for s in trajectory.states]
        assert values[0] > 0.0
        assert values[-1] < values[0]
        assert "spectral radius" in certificate.describe()

    def test_zero_gain_is_unstable_when_plant_is_unstable(self, pendulum):
        # The uncontrolled inverted pendulum diverges from upright.
        program = AffineProgram(gain=[[0.0, 0.0]], names=pendulum.state_names)
        result = verify_stability(pendulum, program)
        assert not result.stable
        assert "not contracting" in result.failure_reason

    def test_stabilising_gain_on_pendulum(self, pendulum):
        program = AffineProgram(gain=[[-12.05, -5.87]], names=pendulum.state_names)
        result = verify_stability(pendulum, program)
        assert result.stable, result.failure_reason
        certificate = result.certificate
        assert certificate.region is not None  # nonlinear: region-local certificate
        # Lyapunov decrease observed along a rollout starting inside the region.
        trajectory = pendulum.simulate(program, steps=400, initial_state=np.array([0.2, 0.0]))
        values = [certificate.lyapunov_value(s) for s in trajectory.states]
        assert values[-1] < values[0] * 0.5

    def test_biased_program_is_rejected(self, satellite):
        program = AffineProgram(
            gain=make_lqr_policy(satellite).gain,
            bias=[0.5],
            names=satellite.state_names,
        )
        result = verify_stability(satellite, program)
        assert not result.stable
        assert "affine, bias-free" in result.failure_reason

    def test_non_affine_program_is_rejected(self, satellite):
        exprs = (parse_expression("x0^3", names=["x0", "x1"]),)
        program = ExprProgram(exprs=exprs, state_dim=2, names=("x0", "x1"))
        result = verify_stability(satellite, program)
        assert not result.stable

    def test_wall_clock_recorded(self, satellite):
        program = AffineProgram(gain=make_lqr_policy(satellite).gain)
        result = verify_stability(satellite, program)
        assert result.wall_clock_seconds >= 0.0


class TestSynthesizeStableProgram:
    def _quick_config(self) -> StableSynthesisConfig:
        return StableSynthesisConfig(
            synthesis=SynthesisConfig(iterations=3, directions=2, warm_start_with_regression=True),
            blend_steps=4,
        )

    def test_stable_program_from_lqr_oracle(self, satellite):
        oracle = make_lqr_policy(satellite)
        result = synthesize_stable_program(satellite, oracle, config=self._quick_config())
        assert result.certificate.spectral_radius < 1.0
        assert result.attempts >= 1
        # The synthesized program actually drives the system towards the origin.
        trajectory = satellite.simulate(
            result.program, steps=500, initial_state=satellite.init_region.center
        )
        assert np.linalg.norm(trajectory.states[-1]) < np.linalg.norm(trajectory.states[0]) + 1e-9

    def test_stable_program_on_pendulum_oracle(self, pendulum):
        oracle = AffineProgram(gain=[[-12.05, -5.87]], names=pendulum.state_names)
        result = synthesize_stable_program(pendulum, oracle, config=self._quick_config())
        assert result.certificate is not None
        trajectory = pendulum.simulate(
            result.program, steps=500, initial_state=np.array([0.2, 0.1])
        )
        assert np.abs(trajectory.states[-1]).max() < 0.1

    def test_destabilising_oracle_falls_back_to_lqr_blend(self, satellite):
        # An oracle that pushes the state away from the origin: the raw imitation
        # gain cannot be certified, so the synthesizer must blend towards LQR.
        destabilising = AffineProgram(
            gain=5.0 * np.ones((satellite.action_dim, satellite.state_dim))
        )
        result = synthesize_stable_program(satellite, destabilising, config=self._quick_config())
        assert result.blend_weight > 0.0
        assert result.used_lqr_blending
        assert result.certificate.spectral_radius < 1.0

    def test_rejects_non_affine_sketch(self, satellite):
        from repro.lang import PolynomialSketch

        oracle = make_lqr_policy(satellite)
        with pytest.raises(ValueError, match="affine sketch"):
            synthesize_stable_program(
                satellite, oracle, sketch=PolynomialSketch(state_dim=2, action_dim=1, degree=2),
                config=self._quick_config(),
            )
