"""Differential suite: every capability-eligible certificate backend must agree
with the branch-and-bound SMT checker on SAFE/UNSAFE — no backend may ever
return a false SAFE.

For each registry environment (including disturbed variants) and each
registered backend that is capability-eligible for the query:

* an *unsafe* (destabilising) program must never be certified — the
  branch-and-bound ground truth cannot derive a certificate for it, so a SAFE
  verdict from any backend would be unsound;
* a *safe* (stabilising) program may be certified or not (the backends are
  incomplete), but every SAFE verdict's invariant must survive an independent
  branch-and-bound audit of conditions (8)-(10), and on disturbed
  environments the invariant must additionally be empirically inductive under
  every disturbance corner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_lqr_policy
from repro.certificates import Box, audit_invariant, available_backends, is_disturbed
from repro.core import VerificationConfig, verify_program
from repro.envs import make_environment
from repro.lang import AffineProgram

#: (environment name, constructor overrides, init box override, good gain,
#: backend allowlist).  ``None`` gains mean "use the LQR teacher"; the duffing
#: rows shrink the initial box because no single affine program covers its
#: full S0; the allowlist keeps the sweep's wall-clock sane — the sampled-LP
#: search is quadratic-sketch-incomplete on the wider 3-dim plants and burns
#: its whole refinement budget before (soundly) giving up, so those rows pin
#: the exact backends instead (``None`` = every capability-eligible backend).
CASES = [
    ("satellite", {}, None, None, None),
    ("satellite", {"disturbance_bound": [0.01, 0.01]}, None, None, None),
    ("tape", {}, None, None, ("lyapunov", "sos")),
    ("duffing", {}, Box([-0.5, -0.5], [0.5, 0.5]), [[-1.0, -1.5]], None),
    (
        "duffing",
        {"disturbance_bound": [0.02, 0.02]},
        Box([-0.5, -0.5], [0.5, 0.5]),
        [[-1.0, -1.5]],
        None,
    ),
]

CASE_IDS = [
    f"{name}{'-disturbed' if overrides else ''}" for name, overrides, _, _, _ in CASES
]

def _config(backend_name):
    """Per-backend config with the (always sound) give-up path bounded so
    refuting rows fail in seconds, not minutes."""
    config = VerificationConfig(backend=backend_name)
    config.barrier.max_refinements = 4
    return config


def _case(name, overrides, init_box, gains):
    env = make_environment(name, **overrides)
    if gains is None:
        good = AffineProgram(gain=make_lqr_policy(env).gain)
    else:
        good = AffineProgram(gain=np.array(gains, dtype=float))
    bad = AffineProgram(gain=5.0 * np.ones((env.action_dim, env.state_dim)))
    return env, init_box, good, bad


def _eligible_backends(env, program, only):
    disturbed = is_disturbed(env)
    return [
        backend
        for backend in available_backends()
        if backend.supports(env, program)
        and (not disturbed or backend.capabilities.disturbance_aware)
        and (only is None or backend.name in only)
    ]


def _one_step_inductive(env, invariant, program, rng, samples=4000):
    """Empirical condition (10): the disturbance-free successor of every
    sampled invariant state stays inside the invariant."""
    states = env.safe_box.sample(rng, samples)
    states = states[invariant.value_batch(states) <= 0.0]
    if not len(states):
        return True
    actions = np.stack([program.act(state) for state in states], axis=0)
    successors = env.predict_batch(states, actions)
    return not np.any(invariant.value_batch(successors) > 1e-6)


def _corner_inductive(env, invariant, program, rng, samples=4000):
    """Empirical condition (10) under every disturbance corner vector."""
    states = env.safe_box.sample(rng, samples)
    inside = invariant.value_batch(states) <= 0.0
    states = states[inside]
    if not len(states):
        return True
    actions = np.stack([program.act(state) for state in states], axis=0)
    nominal = env.predict_batch(states, actions)
    bound = np.asarray(env.disturbance_bound, dtype=float)
    from itertools import product

    for signs in product((-1.0, 1.0), repeat=bound.size):
        successors = nominal + env.dt * (np.asarray(signs) * bound)
        if np.any(invariant.value_batch(successors) > 1e-6):
            return False
    return True


@pytest.mark.parametrize("name,overrides,init_box,gains,only", CASES, ids=CASE_IDS)
def test_no_backend_certifies_an_unsafe_program(name, overrides, init_box, gains, only):
    env, init_box, _good, bad = _case(name, overrides, init_box, gains)
    for backend in _eligible_backends(env, bad, only):
        outcome = verify_program(
            env, bad, init_box=init_box, config=_config(backend.name)
        )
        assert not outcome.verified, (
            f"backend {backend.name} returned a false SAFE for a destabilising "
            f"program on {name} ({overrides})"
        )
        assert outcome.failure_reason


@pytest.mark.parametrize("name,overrides,init_box,gains,only", CASES, ids=CASE_IDS)
def test_safe_verdicts_survive_branch_and_bound_audit(name, overrides, init_box, gains, only):
    env, init_box, good, _bad = _case(name, overrides, init_box, gains)
    rng = np.random.default_rng(0)
    verdicts = {}
    for backend in _eligible_backends(env, good, only):
        outcome = verify_program(
            env, good, init_box=init_box, config=_config(backend.name)
        )
        verdicts[backend.name] = outcome
        if not outcome.verified:
            continue
        # Independent ground truth: the branch-and-bound SMT checker re-derives
        # conditions (8) and (10) from scratch for the claimed invariant.  A
        # SAFE verdict is falsified only by a *concrete* counterexample — an
        # exhausted exploration budget is inconclusive, in which case the
        # one-step empirical induction check below must still hold.
        report = audit_invariant(env, good, outcome.invariant, max_boxes=10_000)
        assert report.unsafe_positive, (backend.name, report.details)
        if not report.inductive:
            assert report.counterexample is None or any(
                "inconclusive" in detail for detail in report.details
            ), (backend.name, report.details)
            assert _one_step_inductive(env, outcome.invariant, good, rng), backend.name
        if is_disturbed(env):
            assert outcome.disturbance_aware
            assert _corner_inductive(env, outcome.invariant, good, rng), (
                f"{backend.name} certificate violates condition (10) under an "
                "admissible disturbance corner"
            )
    # The suite is vacuous if nothing verifies the stabilising program.
    assert any(outcome.verified for outcome in verdicts.values()), verdicts
