"""Tests for regions, the branch-and-bound verifier, SOS, Lyapunov and barrier backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certificates import (
    BarrierCertificateSynthesizer,
    BarrierSynthesisConfig,
    Box,
    BoxComplement,
    BranchAndBoundVerifier,
    EmptyRegion,
    QuadraticCertificateSynthesizer,
    UnionRegion,
    box_difference,
    closed_loop_matrix,
    is_sos,
    sos_decompose,
)
from repro.lang import InvariantSketch
from repro.polynomials import Polynomial


# ------------------------------------------------------------------------ regions
class TestBox:
    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Box((1.0,), (0.0,))

    def test_contains_and_batch(self):
        box = Box((-1, -1), (1, 1))
        assert box.contains([0.0, 0.5])
        assert not box.contains([1.5, 0.0])
        points = np.array([[0.0, 0.0], [2.0, 0.0]])
        np.testing.assert_array_equal(box.contains_batch(points), [True, False])

    def test_sample_within(self):
        box = Box((-2, 0), (2, 1))
        samples = box.sample(np.random.default_rng(0), 200)
        assert box.contains_batch(samples).all()

    def test_geometry_helpers(self):
        box = Box((0, 0), (2, 4))
        np.testing.assert_allclose(box.center, [1, 2])
        np.testing.assert_allclose(box.widths, [2, 4])
        assert box.radius == 2.0
        assert box.volume() == 8.0

    def test_corners_count(self):
        assert Box((0, 0, 0), (1, 1, 1)).corners().shape == (8, 3)

    def test_split_covers_box(self):
        box = Box((0, 0), (4, 1))
        left, right = box.split()
        assert left.high[0] == 2.0 and right.low[0] == 2.0

    def test_intersect(self):
        a = Box((0, 0), (2, 2))
        b = Box((1, 1), (3, 3))
        inter = a.intersect(b)
        assert inter.low == (1.0, 1.0) and inter.high == (2.0, 2.0)
        assert a.intersect(Box((5, 5), (6, 6))) is None

    def test_shrink_around(self):
        box = Box((-1, -1), (1, 1))
        shrunk = box.shrink_around([0.5, 0.5], 0.25)
        assert shrunk.low == (0.25, 0.25) and shrunk.high == (0.75, 0.75)

    def test_shrink_with_large_radius_recovers_box(self):
        box = Box((-1, -1), (1, 1))
        shrunk = box.shrink_around([0.9, -0.9], 2 * box.radius)
        assert shrunk.low == box.low and shrunk.high == box.high

    def test_subset(self):
        assert Box((-1, -1), (1, 1)).is_subset_of(Box((-2, -2), (2, 2)))
        assert not Box((-3, 0), (0, 1)).is_subset_of(Box((-2, -2), (2, 2)))

    def test_grid(self):
        grid = Box((0, 0), (1, 1)).grid(3)
        assert grid.shape == (9, 2)


class TestBoxComplement:
    def test_membership(self):
        region = BoxComplement(domain=Box((-2, -2), (2, 2)), safe=Box((-1, -1), (1, 1)))
        assert region.contains([1.5, 0.0])
        assert not region.contains([0.0, 0.0])
        assert not region.contains([3.0, 0.0])  # outside the working domain
        assert region.contains([1.0, 0.0])  # boundary of the safe box is unsafe-closed

    def test_cover_boxes_partition(self):
        outer = Box((-2, -2), (2, 2))
        inner = Box((-1, -1), (1, 1))
        cover = box_difference(outer, inner)
        assert 1 <= len(cover) <= 4
        total = sum(box.volume() for box in cover)
        assert total == pytest.approx(outer.volume() - inner.volume())

    def test_cover_when_disjoint(self):
        assert box_difference(Box((0,), (1,)), Box((5,), (6,))) == [Box((0,), (1,))]

    def test_sampling_lands_in_region(self):
        region = BoxComplement(domain=Box((-2, -2), (2, 2)), safe=Box((-1, -1), (1, 1)))
        samples = region.sample(np.random.default_rng(0), 300)
        assert region.contains_batch(samples).all()

    def test_union_and_empty(self):
        union = UnionRegion([Box((0, 0), (1, 1)), Box((2, 2), (3, 3))])
        assert union.contains([2.5, 2.5])
        assert not union.contains([1.5, 1.5])
        assert EmptyRegion(2).sample(np.random.default_rng(0), 5).shape == (0, 2)
        assert not EmptyRegion(2).contains([0.0, 0.0])


# ------------------------------------------------------------------ branch & bound
class TestBranchAndBound:
    def setup_method(self):
        self.verifier = BranchAndBoundVerifier(max_boxes=20_000, min_width=1e-3)
        self.x = Polynomial.variable(0, 2)
        self.y = Polynomial.variable(1, 2)

    def test_prove_nonpositive_true(self):
        poly = self.x**2 + self.y**2 - 3.0
        assert self.verifier.prove_nonpositive(poly, [Box((-1, -1), (1, 1))]).verified

    def test_prove_nonpositive_false_returns_counterexample(self):
        poly = self.x**2 + self.y**2 - 0.5
        result = self.verifier.prove_nonpositive(poly, [Box((-1, -1), (1, 1))])
        assert not result.verified
        assert poly.evaluate(result.counterexample) > 0

    def test_prove_positive_true(self):
        poly = self.x**2 + self.y**2 + 0.1
        assert self.verifier.prove_positive(poly, [Box((-1, -1), (1, 1))]).verified

    def test_prove_positive_false(self):
        poly = self.x + self.y
        result = self.verifier.prove_positive(poly, [Box((-1, -1), (1, 1))])
        assert not result.verified

    def test_constraint_restricts_domain(self):
        # x + y <= 0 does not hold on the box, but it does on {x <= -0.5 box}
        target = self.x + self.y
        constraint = self.x + 0.5  # x <= -0.5
        result = self.verifier.prove_nonpositive(
            target, [Box((-1, -1), (1, 0.4))], constraints=[constraint]
        )
        assert result.verified

    def test_tight_inequality_near_zero_boundary(self):
        # -x^2 - y^2 <= 0 everywhere; equality at the origin stresses the
        # resolution-limit sampling path.
        poly = -(self.x**2) - self.y**2
        assert self.verifier.prove_nonpositive(poly, [Box((-1, -1), (1, 1))]).verified

    def test_find_uncovered_point_none_when_covered(self):
        barrier = self.x**2 + self.y**2 - 10.0
        witness = self.verifier.find_uncovered_point(Box((-1, -1), (1, 1)), [barrier])
        assert witness is None

    def test_find_uncovered_point_witness(self):
        barrier = self.x**2 + self.y**2 - 0.25
        witness = self.verifier.find_uncovered_point(Box((-1, -1), (1, 1)), [barrier])
        assert witness is not None
        assert barrier.evaluate(witness) > 0

    def test_find_uncovered_point_union(self):
        left = (self.x + 0.5) ** 2 + self.y**2 - 0.6
        right = (self.x - 0.5) ** 2 + self.y**2 - 0.6
        witness = self.verifier.find_uncovered_point(
            Box((-0.9, -0.2), (0.9, 0.2)), [left, right]
        )
        assert witness is None

    def test_empty_barrier_list_is_uncovered(self):
        witness = self.verifier.find_uncovered_point(Box((-1, -1), (1, 1)), [])
        assert witness is not None

    def test_invalid_resolution_policy(self):
        with pytest.raises(ValueError):
            BranchAndBoundVerifier(resolution_limit_policy="bogus")


# --------------------------------------------------------------------------- SOS
class TestSOS:
    def test_sum_of_squares_is_recognised(self):
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        assert is_sos(x**2 + 2.0 * y**2)
        assert is_sos((x + y) ** 2)

    def test_indefinite_is_rejected(self):
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        assert not is_sos(x**2 - y**2)
        assert not is_sos(x)  # odd degree

    def test_gram_matrix_reconstructs_polynomial(self):
        x = Polynomial.variable(0, 1)
        p = (x + 1.0) ** 2
        result = sos_decompose(p)
        assert result.is_sos
        eigenvalues = np.linalg.eigvalsh(result.gram)
        assert eigenvalues.min() >= -1e-7

    def test_zero_polynomial(self):
        assert is_sos(Polynomial.zero(2))


# ---------------------------------------------------------------------- Lyapunov
class TestQuadraticCertificates:
    def _double_integrator(self, gain):
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        b = np.array([[0.0], [1.0]])
        return closed_loop_matrix(a, b, np.array([gain]), dt=0.01)

    def test_certifies_stable_loop(self):
        closed = self._double_integrator([-1.0, -1.5])
        result = QuadraticCertificateSynthesizer(
            closed, Box((-0.3, -0.3), (0.3, 0.3)), Box((-2, -2), (2, 2))
        ).search()
        assert result.verified
        invariant = result.invariant
        # S0 corners are inside, far unsafe points are outside.
        assert invariant.holds([0.3, 0.3])
        assert not invariant.holds([2.5, 2.5])

    def test_rejects_unstable_loop(self):
        closed = self._double_integrator([1.0, 0.5])
        result = QuadraticCertificateSynthesizer(
            closed, Box((-0.3, -0.3), (0.3, 0.3)), Box((-2, -2), (2, 2))
        ).search()
        assert not result.verified
        assert "spectral radius" in result.failure_reason

    def test_rejects_when_safe_box_too_small(self):
        closed = self._double_integrator([-1.0, -1.5])
        result = QuadraticCertificateSynthesizer(
            closed, Box((-0.5, -0.5), (0.5, 0.5)), Box((-0.55, -0.55), (0.55, 0.55))
        ).search()
        assert not result.verified

    def test_invariant_is_inductive_empirically(self):
        closed = self._double_integrator([-1.0, -1.5])
        result = QuadraticCertificateSynthesizer(
            closed, Box((-0.3, -0.3), (0.3, 0.3)), Box((-2, -2), (2, 2))
        ).search()
        invariant = result.invariant
        rng = np.random.default_rng(0)
        state = np.array([0.29, 0.29])
        for _ in range(500):
            assert invariant.holds(state)
            state = closed @ state

    def test_disturbance_bound_shrinks_feasibility(self):
        closed = self._double_integrator([-1.0, -1.5])
        huge_disturbance = QuadraticCertificateSynthesizer(
            closed,
            Box((-0.3, -0.3), (0.3, 0.3)),
            Box((-2, -2), (2, 2)),
            disturbance_bound=[500.0, 500.0],
        ).search()
        assert not huge_disturbance.verified


# ------------------------------------------------------------------------ barrier
class TestBarrierSynthesis:
    def _setup(self, degree=2):
        # Closed loop: stable linear map, invariant must separate S0 from |x| >= 2.
        closed = np.array([[0.99, 0.01], [-0.02, 0.97]])
        closed_polys = [
            Polynomial.affine(closed[0], 0.0, 2),
            Polynomial.affine(closed[1], 0.0, 2),
        ]
        sketch = InvariantSketch(state_dim=2, degree=degree)
        init = Box((-0.3, -0.3), (0.3, 0.3))
        safe = Box((-2, -2), (2, 2))
        domain = Box((-4, -4), (4, 4))
        unsafe = box_difference(domain, safe)
        return BarrierCertificateSynthesizer(
            sketch,
            closed_polys,
            init,
            unsafe,
            safe,
            domain,
            config=BarrierSynthesisConfig(samples_init=150, samples_unsafe=150, samples_induction=300),
            verifier=BranchAndBoundVerifier(max_boxes=40_000, min_width=0.02),
        )

    def test_finds_certificate_for_stable_loop(self):
        result = self._setup().search()
        assert result.verified
        invariant = result.invariant
        assert invariant.holds([0.0, 0.0])
        assert invariant.holds([0.3, 0.3])
        assert not invariant.holds([3.0, 3.0])

    def test_certificate_conditions_hold_on_samples(self):
        synthesizer = self._setup()
        result = synthesizer.search()
        rng = np.random.default_rng(1)
        init_samples = synthesizer.init_box.sample(rng, 200)
        assert (result.invariant.barrier.evaluate_batch(init_samples) <= 1e-6).all()
        unsafe_samples = np.concatenate(
            [box.sample(rng, 50) for box in synthesizer.unsafe_boxes], axis=0
        )
        assert (result.invariant.barrier.evaluate_batch(unsafe_samples) > 0).all()

    def test_reports_failure_for_unstable_loop(self):
        closed_polys = [
            Polynomial.affine([1.05, 0.0], 0.0, 2),
            Polynomial.affine([0.0, 1.05], 0.0, 2),
        ]
        sketch = InvariantSketch(state_dim=2, degree=2)
        init = Box((-0.5, -0.5), (0.5, 0.5))
        safe = Box((-1, -1), (1, 1))
        domain = Box((-2, -2), (2, 2))
        synthesizer = BarrierCertificateSynthesizer(
            sketch,
            closed_polys,
            init,
            box_difference(domain, safe),
            safe,
            domain,
            config=BarrierSynthesisConfig(max_refinements=3),
            verifier=BranchAndBoundVerifier(max_boxes=10_000, min_width=0.05),
        )
        result = synthesizer.search()
        assert not result.verified
        assert result.failure_reason
