"""Tests for artifact serialization (repro.lang.serialize)."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (
    AffineProgram,
    ExprProgram,
    GuardedProgram,
    Invariant,
    InvariantUnion,
    ShieldArtifact,
    TrueInvariant,
    invariant_from_dict,
    invariant_to_dict,
    invariant_union_from_dict,
    invariant_union_to_dict,
    load_artifact,
    parse_expression,
    polynomial_from_dict,
    polynomial_to_dict,
    program_from_dict,
    program_to_dict,
    save_artifact,
)
from repro.polynomials import Polynomial, monomial_basis


def _random_polynomial(rng: np.random.Generator, num_vars: int = 2, degree: int = 3) -> Polynomial:
    basis = monomial_basis(num_vars, degree)
    return Polynomial.from_coefficients(rng.normal(size=len(basis)), basis, num_vars)


# ----------------------------------------------------------------------- polynomials
class TestPolynomialSerialization:
    def test_round_trip_values(self):
        rng = np.random.default_rng(0)
        poly = _random_polynomial(rng)
        restored = polynomial_from_dict(polynomial_to_dict(poly))
        assert restored == poly

    def test_zero_polynomial(self):
        poly = Polynomial.zero(3)
        restored = polynomial_from_dict(polynomial_to_dict(poly))
        assert restored.is_zero()
        assert restored.num_vars == 3

    def test_dict_is_json_serializable(self):
        poly = Polynomial.affine([1.0, -2.0], 0.5, 2)
        text = json.dumps(polynomial_to_dict(poly))
        restored = polynomial_from_dict(json.loads(text))
        assert restored == poly

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_property_round_trip(self, data):
        basis = monomial_basis(2, 2)
        coeffs = [
            data.draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
            for _ in basis
        ]
        poly = Polynomial.from_coefficients(coeffs, basis, 2)
        restored = polynomial_from_dict(json.loads(json.dumps(polynomial_to_dict(poly))))
        assert restored == poly


# ------------------------------------------------------------------------ invariants
class TestInvariantSerialization:
    def test_barrier_invariant_round_trip(self):
        rng = np.random.default_rng(1)
        invariant = Invariant(barrier=_random_polynomial(rng), margin=0.5, names=("a", "b"))
        restored = invariant_from_dict(invariant_to_dict(invariant))
        assert isinstance(restored, Invariant)
        assert restored.margin == pytest.approx(0.5)
        assert restored.names == ("a", "b")
        for point in rng.uniform(-2, 2, size=(10, 2)):
            assert restored.holds(point) == invariant.holds(point)

    def test_true_invariant_round_trip(self):
        restored = invariant_from_dict(invariant_to_dict(TrueInvariant(num_vars=4)))
        assert isinstance(restored, TrueInvariant)
        assert restored.num_vars == 4

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown invariant kind"):
            invariant_from_dict({"kind": "mystery"})

    def test_union_round_trip(self):
        rng = np.random.default_rng(2)
        union = InvariantUnion(
            [Invariant(barrier=_random_polynomial(rng)) for _ in range(3)]
        )
        restored = invariant_union_from_dict(invariant_union_to_dict(union))
        assert len(restored) == 3
        for point in rng.uniform(-1, 1, size=(10, 2)):
            assert restored.holds(point) == union.holds(point)


# -------------------------------------------------------------------------- programs
class TestProgramSerialization:
    def test_affine_round_trip(self):
        program = AffineProgram(
            gain=[[1.0, -2.0], [0.5, 3.0]],
            bias=[0.1, -0.1],
            action_low=[-1.0, -1.0],
            action_high=[1.0, 1.0],
            names=("x", "y"),
        )
        restored = program_from_dict(program_to_dict(program))
        assert isinstance(restored, AffineProgram)
        np.testing.assert_allclose(restored.gain, program.gain)
        np.testing.assert_allclose(restored.bias, program.bias)
        np.testing.assert_allclose(restored.action_low, program.action_low)
        state = np.array([0.7, -0.3])
        np.testing.assert_allclose(restored.act(state), program.act(state))

    def test_affine_without_bounds(self):
        program = AffineProgram(gain=[[2.0, 0.0]])
        restored = program_from_dict(program_to_dict(program))
        assert restored.action_low is None
        assert restored.action_high is None

    def test_expr_round_trip(self):
        exprs = (
            parse_expression("x0^2 - x1", names=["x0", "x1"]),
            parse_expression("2*x0*x1", names=["x0", "x1"]),
        )
        program = ExprProgram(exprs=exprs, state_dim=2, names=("x0", "x1"))
        restored = program_from_dict(program_to_dict(program))
        assert isinstance(restored, ExprProgram)
        rng = np.random.default_rng(3)
        for point in rng.uniform(-2, 2, size=(10, 2)):
            np.testing.assert_allclose(restored.act(point), program.act(point), atol=1e-10)

    def test_guarded_round_trip(self):
        rng = np.random.default_rng(4)
        program = GuardedProgram(
            branches=[
                (
                    Invariant(barrier=_random_polynomial(rng), names=("x", "y")),
                    AffineProgram(gain=[[0.3, -0.4]], names=("x", "y")),
                ),
                (
                    Invariant(barrier=_random_polynomial(rng), names=("x", "y")),
                    AffineProgram(gain=[[-0.8, 0.1]], names=("x", "y")),
                ),
            ],
            fallback=AffineProgram(gain=[[0.0, 0.0]], names=("x", "y")),
            names=("x", "y"),
            strict=False,
        )
        restored = program_from_dict(json.loads(json.dumps(program_to_dict(program))))
        assert isinstance(restored, GuardedProgram)
        assert len(restored.branches) == 2
        assert restored.fallback is not None
        for point in rng.uniform(-1.5, 1.5, size=(20, 2)):
            assert restored.branch_index(point) == program.branch_index(point)
            np.testing.assert_allclose(restored.act(point), program.act(point), atol=1e-10)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown program kind"):
            program_from_dict({"kind": "neural"})

    def test_unserializable_type_raises(self):
        class Custom:
            pass

        with pytest.raises(TypeError, match="cannot serialize"):
            program_to_dict(Custom())


# -------------------------------------------------------------------------- artifact
class TestShieldArtifact:
    def _make_artifact(self) -> ShieldArtifact:
        rng = np.random.default_rng(5)
        invariant = Invariant(barrier=_random_polynomial(rng), names=("eta", "omega"))
        program = GuardedProgram(
            branches=[(invariant, AffineProgram(gain=[[-12.05, -5.87]], names=("eta", "omega")))],
            names=("eta", "omega"),
        )
        return ShieldArtifact(
            program=program,
            invariant=InvariantUnion([invariant]),
            environment="pendulum",
            environment_overrides={"safe_angle_deg": 23.0},
            metadata={"note": "unit-test artifact"},
        )

    def test_round_trip_dict(self):
        artifact = self._make_artifact()
        restored = ShieldArtifact.from_dict(artifact.to_dict())
        assert restored.environment == "pendulum"
        assert restored.environment_overrides == {"safe_angle_deg": 23.0}
        assert restored.metadata["note"] == "unit-test artifact"
        assert len(restored.invariant) == 1

    def test_save_and_load(self, tmp_path):
        artifact = self._make_artifact()
        path = save_artifact(artifact, tmp_path / "shields" / "pendulum.json")
        assert path.exists()
        restored = load_artifact(path)
        state = np.array([0.1, -0.05])
        np.testing.assert_allclose(restored.program.act(state), artifact.program.act(state))

    def test_rejects_newer_format(self):
        artifact = self._make_artifact()
        data = artifact.to_dict()
        data["format_version"] = 999
        with pytest.raises(ValueError, match="newer than supported"):
            ShieldArtifact.from_dict(data)

    def test_build_shield_runs_in_environment(self):
        from repro import make_environment

        artifact = self._make_artifact()
        env = make_environment("pendulum")
        oracle = AffineProgram(gain=[[-12.0, -6.0]], names=("eta", "omega"))
        shield = artifact.build_shield(env, oracle)
        action = shield(np.array([0.05, 0.0]))
        assert action.shape == (env.action_dim,)
        assert shield.statistics.decisions == 1

    def test_from_synthesis_result_like_object(self):
        class FakeResult:
            def __init__(self, program, invariant):
                self.program = program
                self.invariant = invariant
                self.program_size = 1
                self.synthesis_seconds = 1.5

        artifact_source = self._make_artifact()
        fake = FakeResult(artifact_source.program, artifact_source.invariant)
        artifact = ShieldArtifact.from_synthesis_result(fake, environment="pendulum", run="t")
        assert artifact.metadata["program_size"] == 1
        assert artifact.metadata["run"] == "t"
        assert artifact.environment == "pendulum"


# ------------------------------------------------------- sketch round-trip property
class TestSketchInstantiationRoundTrip:
    """load(save(program)) == program over random sketch instantiations.

    Together with the 200-case store round-trip in ``test_store.py`` this
    exercises well over 200 randomly generated programs; equality is exact
    (canonical-dict / fingerprint comparison), not approximate.
    """

    def _random_program(self, rng):
        from repro.lang import AffineSketch, PolynomialSketch

        state_dim = int(rng.integers(1, 5))
        action_dim = int(rng.integers(1, 3))
        if rng.random() < 0.5:
            sketch = AffineSketch(
                state_dim=state_dim,
                action_dim=action_dim,
                include_bias=bool(rng.random() < 0.5),
                action_low=-np.ones(action_dim) if rng.random() < 0.3 else None,
                action_high=np.ones(action_dim) if rng.random() < 0.3 else None,
            )
        else:
            sketch = PolynomialSketch(
                state_dim=state_dim, action_dim=action_dim, degree=int(rng.integers(1, 4))
            )
        return sketch.instantiate(rng.normal(scale=2.5, size=sketch.num_parameters))

    def test_200_random_instantiations_round_trip_exactly(self):
        from repro.lang import program_fingerprint

        rng = np.random.default_rng(2024)
        for _ in range(200):
            program = self._random_program(rng)
            payload = json.loads(json.dumps(program_to_dict(program)))
            restored = program_from_dict(payload)
            assert program_to_dict(restored) == program_to_dict(program)
            assert program_fingerprint(restored) == program_fingerprint(program)

    def test_file_round_trip_for_sketch_programs(self, tmp_path):
        rng = np.random.default_rng(77)
        for index in range(10):
            program = self._random_program(rng)
            artifact = ShieldArtifact(
                program=GuardedProgram(
                    branches=[
                        (
                            Invariant(
                                barrier=_random_polynomial(
                                    rng, num_vars=program.state_dim
                                )
                            ),
                            program,
                        )
                    ]
                ),
                invariant=InvariantUnion([]),
            )
            path = save_artifact(artifact, tmp_path / f"artifact_{index}.json")
            restored = load_artifact(path)
            assert program_to_dict(restored.program) == program_to_dict(artifact.program)


# ------------------------------------------------------------- corrupted artifacts
class TestCorruptedArtifacts:
    """Corrupted/truncated artifact files must raise clean ArtifactError."""

    def _saved_path(self, tmp_path):
        rng = np.random.default_rng(5)
        invariant = Invariant(barrier=_random_polynomial(rng), names=("a", "b"))
        artifact = ShieldArtifact(
            program=GuardedProgram(
                branches=[(invariant, AffineProgram(gain=[[1.0, 0.0]]))]
            ),
            invariant=InvariantUnion([invariant]),
            environment="pendulum",
        )
        return save_artifact(artifact, tmp_path / "artifact.json")

    def test_truncated_file_raises_artifact_error(self, tmp_path):
        from repro.lang import ArtifactError

        path = self._saved_path(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 3])
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(path)

    def test_binary_garbage_raises_artifact_error(self, tmp_path):
        from repro.lang import ArtifactError

        path = self._saved_path(tmp_path)
        path.write_bytes(b"\x80\x04\x95 pickled nonsense \x00")
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_non_object_json_raises_artifact_error(self, tmp_path):
        from repro.lang import ArtifactError

        path = self._saved_path(tmp_path)
        path.write_text("[1, 2, 3]")
        with pytest.raises(ArtifactError, match="JSON object"):
            load_artifact(path)

    def test_structurally_broken_artifact_raises_artifact_error(self, tmp_path):
        from repro.lang import ArtifactError

        path = self._saved_path(tmp_path)
        data = json.loads(path.read_text())
        del data["program"]["branches"][0]["program"]["gain"]
        path.write_text(json.dumps(data))
        with pytest.raises(ArtifactError, match="malformed"):
            load_artifact(path)

    def test_artifact_error_is_value_error(self):
        from repro.lang import ArtifactError

        assert issubclass(ArtifactError, ValueError)
