"""Integration smoke tests of the experiment modules (scaled-down Table 1/3 rows).

The heavy sweeps live in ``benchmarks/``; these tests only check that the
experiment code paths produce well-formed rows with the paper's qualitative
shape on the cheapest benchmarks.
"""

import pytest

from repro.experiments import (
    ExperimentScale,
    run_benchmark_row,
    run_environment_change,
    run_robustness,
)
from repro.experiments.table1 import TABLE1_BENCHMARKS


TINY = ExperimentScale(
    episodes=3,
    steps=80,
    synthesis_iterations=4,
    synthesis_trajectories=1,
    synthesis_trajectory_length=40,
    max_counterexamples=3,
    oracle_hidden=(24, 16),
)


def test_table1_benchmark_list_matches_paper():
    assert len(TABLE1_BENCHMARKS) == 15
    assert TABLE1_BENCHMARKS[0] == "satellite"
    assert "8_car_platoon" in TABLE1_BENCHMARKS


@pytest.mark.parametrize("name", ["satellite", "quadcopter"])
def test_table1_row_shape(name):
    row = run_benchmark_row(name, TINY)
    assert row["benchmark"] == name
    assert row["shielded_failures"] == 0
    assert row["program_size"] >= 1
    assert row["vars"] == 2
    # Paper reference numbers are attached for EXPERIMENTS.md comparison.
    assert "paper_overhead_pct" in row


def test_table3_self_driving_obstacle_row():
    row = run_environment_change("self_driving_obstacle", TINY)
    if "error" in row:
        pytest.skip(row["error"])
    assert row["shielded_failures"] == 0
    assert row["program_size"] >= 1


def test_robustness_sweep_rows_well_formed():
    rows = run_robustness(
        benchmarks=["satellite"], kinds=["none", "uniform"], scale=TINY, magnitude=0.03
    )
    assert [row["disturbance"] for row in rows] == ["none", "uniform"]
    for row in rows:
        assert row["benchmark"] == "satellite"
        assert "error" not in row
        assert row["episodes"] == TINY.episodes
        assert "certificate_valid" in row
    # A uniform stress of this magnitude is estimable and within the margin.
    assert rows[1]["estimated_bound"] is not None
    assert rows[1]["certificate_valid"] is True
