"""Integration smoke tests of the experiment modules (scaled-down Table 1/3 rows).

The heavy sweeps live in ``benchmarks/``; these tests only check that the
experiment code paths produce well-formed rows with the paper's qualitative
shape on the cheapest benchmarks.
"""

import pytest

from repro.experiments import (
    ExperimentScale,
    run_benchmark_row,
    run_environment_change,
    run_robustness,
)
from repro.experiments.table1 import TABLE1_BENCHMARKS


TINY = ExperimentScale(
    episodes=3,
    steps=80,
    synthesis_iterations=4,
    synthesis_trajectories=1,
    synthesis_trajectory_length=40,
    max_counterexamples=3,
    oracle_hidden=(24, 16),
)


def test_table1_benchmark_list_matches_paper():
    assert len(TABLE1_BENCHMARKS) == 15
    assert TABLE1_BENCHMARKS[0] == "satellite"
    assert "8_car_platoon" in TABLE1_BENCHMARKS


@pytest.mark.parametrize("name", ["satellite", "quadcopter"])
def test_table1_row_shape(name):
    row = run_benchmark_row(name, TINY)
    assert row["benchmark"] == name
    assert row["shielded_failures"] == 0
    assert row["program_size"] >= 1
    assert row["vars"] == 2
    # Paper reference numbers are attached for EXPERIMENTS.md comparison.
    assert "paper_overhead_pct" in row


def test_table3_self_driving_obstacle_row():
    row = run_environment_change("self_driving_obstacle", TINY)
    if "error" in row:
        pytest.skip(row["error"])
    assert row["shielded_failures"] == 0
    assert row["program_size"] >= 1


def test_robustness_sweep_rows_well_formed():
    rows = run_robustness(
        benchmarks=["satellite"], kinds=["none", "uniform"], scale=TINY, magnitude=0.03
    )
    assert [row["disturbance"] for row in rows] == ["none", "uniform"]
    for row in rows:
        assert row["benchmark"] == "satellite"
        assert "error" not in row
        assert row["episodes"] == TINY.episodes
        assert "certificate_valid" in row
    # A uniform stress of this magnitude is estimable and within the margin.
    assert rows[1]["estimated_bound"] is not None
    assert rows[1]["certificate_valid"] is True


def test_robustness_sweep_hits_verdict_cache_on_second_run(tmp_path):
    """Acceptance: a second sweep over an unchanged store answers its
    certificate rechecks from the verdict cache, with identical outcomes."""
    store = str(tmp_path / "store")
    kwargs = dict(benchmarks=["satellite"], kinds=["uniform"], scale=TINY, magnitude=0.03)
    first = run_robustness(store=store, **kwargs)
    second = run_robustness(store=store, **kwargs)
    plain = run_robustness(**kwargs)  # no store, no verdict cache

    row1, row2, row0 = first[0], second[0], plain[0]
    assert row1["verdict_misses"] >= 1  # widened-env recheck proved fresh
    assert row2["verdict_hits"] >= 1 and row2["verdict_misses"] == 0
    # Cache-on (hit), cache-on (miss), and cache-off rows agree bit for bit on
    # everything except the counters themselves.
    counters = {"verdict_hits", "verdict_misses"}
    trimmed1 = {k: v for k, v in row1.items() if k not in counters}
    trimmed2 = {k: v for k, v in row2.items() if k not in counters}
    trimmed0 = {k: v for k, v in row0.items() if k not in counters}
    assert trimmed1 == trimmed2 == trimmed0


def test_table1_store_sweep_hits_verdict_cache(tmp_path):
    """Acceptance: `table1 --store` rows carry a kernel certificate recheck
    whose verdicts come from the store-backed cache on every sweep."""
    from repro.experiments.table1 import run_table1

    store = str(tmp_path / "store")
    first = run_table1(["satellite"], TINY, skip_failures=False, store=store)[0]
    second = run_table1(["satellite"], TINY, skip_failures=False, store=store)[0]
    assert not first["from_store"] and second["from_store"]
    assert first["certificate_valid"] and second["certificate_valid"]
    # CEGIS itself populated the cache, so even the first sweep's recheck hits;
    # the second sweep re-proves nothing at all.
    assert first["verdict_hits"] >= 1
    assert second["verdict_hits"] >= 1 and second["verdict_misses"] == 0
    assert first["recheck_backends"] == second["recheck_backends"]
