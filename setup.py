"""Legacy install shim for offline/minimal environments (no `wheel`, no PEP 660).

All packaging metadata lives in ``pyproject.toml``; this file only enables
``python setup.py develop`` where ``pip install -e .`` cannot build a wheel.
"""
from setuptools import setup

setup()
