"""Backend selection on the verification kernel.

Verifies the same query — the satellite benchmark under its LQR teacher — with
every registered certificate backend, with the auto portfolio, and through the
store-backed verdict cache, printing the provenance each outcome carries.

Run with:  PYTHONPATH=src python examples/verification_backends.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import make_environment
from repro.baselines import make_lqr_policy
from repro.certificates import available_backends
from repro.core import VerificationConfig, verify_program
from repro.lang import AffineProgram
from repro.store import VerdictCache


def main() -> None:
    env = make_environment("satellite")
    program = AffineProgram(gain=make_lqr_policy(env).gain)

    print("registered backends (cheapest first):")
    for backend in available_backends():
        caps = backend.capabilities
        print(
            f"  {backend.name:<10} linear={caps.handles_linear} "
            f"polynomial={caps.handles_polynomial} "
            f"disturbance_aware={caps.disturbance_aware} "
            f"counterexamples={caps.produces_counterexamples}"
        )

    print("\npinning each backend on the same query:")
    for backend in available_backends():
        outcome = verify_program(
            env, program, config=VerificationConfig(backend=backend.name)
        )
        print(
            f"  {backend.name:<10} verified={outcome.verified} "
            f"wall_clock={outcome.wall_clock_seconds:.4f}s"
        )

    print("\nauto portfolio (capability-filtered, cheapest first):")
    outcome = verify_program(env, program)  # backend="auto"
    print(
        f"  winner={outcome.backend} attempts={outcome.attempts} "
        f"disturbance_aware={outcome.disturbance_aware}"
    )

    # On a disturbed environment the portfolio only dispatches
    # disturbance-aware backends, and the barrier search (if reached) encodes
    # condition (10)'s worst-case disturbance term.
    disturbed = make_environment("satellite", disturbance_bound=[0.01, 0.01])
    outcome = verify_program(disturbed, program)
    print(
        f"  disturbed: winner={outcome.backend} verified={outcome.verified} "
        f"disturbance_aware={outcome.disturbance_aware}"
    )

    print("\nverdict cache (repeat proofs become JSON reads):")
    with tempfile.TemporaryDirectory() as tmp:
        cache = VerdictCache(Path(tmp) / "verdicts")
        config = VerificationConfig(backend="barrier")
        fresh = verify_program(env, program, config=config, verdict_cache=cache)
        cached = verify_program(env, program, config=config, verdict_cache=cache)
        print(
            f"  fresh:  {fresh.wall_clock_seconds:.4f}s from_cache={fresh.from_cache}"
        )
        print(
            f"  cached: identical invariant={cached.invariant == fresh.invariant} "
            f"from_cache={cached.from_cache}  stats={cache.stats()}"
        )


if __name__ == "__main__":
    main()
