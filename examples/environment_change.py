#!/usr/bin/env python3
"""Handling environment changes without retraining (§5, Table 3).

A neural controller is trained for the nominal inverted pendulum.  The pendulum
is then deployed with a heavier mass (+0.3 kg) and a tighter safety constraint
(the 30-degree Segway scenario of Fig. 3(b)).  Instead of retraining, we keep
the stale oracle and synthesize a *new* shield for the changed environment —
which is far cheaper than training and removes the failures the stale
controller now exhibits.

Run with:  python examples/environment_change.py
"""

from repro import (
    CEGISConfig,
    EvaluationProtocol,
    SynthesisConfig,
    VerificationConfig,
    compare_shielded,
    synthesize_shield,
    train_oracle,
)
from repro.core import DistanceConfig
from repro.envs import make_pendulum


def main() -> None:
    # The environment the network was trained for.
    training_env = make_pendulum(safe_angle_deg=30.0, mass=1.0)
    oracle_result = train_oracle(training_env, hidden_sizes=(64, 48), seed=0)
    oracle = oracle_result.policy
    print(f"Trained oracle in {oracle_result.training_seconds:.1f}s "
          f"for {training_env.describe()}")

    # The changed deployment environment: heavier pendulum, same oracle.
    deployment_env = make_pendulum(safe_angle_deg=30.0, mass=1.3)
    print(f"\nDeploying the SAME network in: {deployment_env.describe()}")

    config = CEGISConfig(
        synthesis=SynthesisConfig(
            iterations=10,
            distance=DistanceConfig(num_trajectories=2, trajectory_length=80),
        ),
        verification=VerificationConfig(backend="barrier", invariant_degree=4),
        max_counterexamples=8,
    )
    shield_result = synthesize_shield(deployment_env, oracle, config=config)
    print(f"New shield synthesized in {shield_result.synthesis_seconds:.1f}s "
          f"({shield_result.program_size} branches) — no retraining needed "
          f"(training took {oracle_result.training_seconds:.1f}s).")

    protocol = EvaluationProtocol(episodes=10, steps=300, seed=2)
    comparison = compare_shielded(deployment_env, oracle, shield_result.shield, protocol)
    print("\n--- stale network in the changed environment ---")
    print(f"unshielded failures: {comparison.neural.failures}")
    print(f"shielded failures:   {comparison.shielded.failures}")
    print(f"interventions:       {comparison.shielded.interventions} "
          f"of {comparison.shielded.total_decisions}")


if __name__ == "__main__":
    main()
