"""Walkthrough: static analysis of shield artifacts (``repro.analysis``).

This example exercises every consumer of the abstract-interpretation
analyzer on the satellite benchmark:

1. synthesize a small shield and lint the store it was persisted into
   (what ``repro lint --store DIR`` does) — the fresh artifact is clean;
2. analyze hand-built *defective* programs and read the coded diagnostics:
   an action-bound violation (``A001``), a dead branch (``A002``), a
   strict-dispatch coverage gap with a concrete witness (``A004``), and a
   non-finite coefficient (``A006``);
3. watch the store gate reject an artifact with error-severity findings;
4. statically refute a destabilizing controller by interval reachability —
   the proof the CEGIS pre-filter uses to skip simulation and certificate
   search for provably-unsafe candidates.

Run with ``PYTHONPATH=src python examples/lint_artifacts.py``.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.analysis import analyze_program, lint_store, statically_refuted
from repro.baselines import make_lqr_policy
from repro.certificates.regions import Box
from repro.core import CEGISConfig, SynthesisConfig
from repro.envs import make_environment
from repro.lang import (
    AffineProgram,
    GuardedProgram,
    Invariant,
    InvariantUnion,
    ShieldArtifact,
)
from repro.polynomials import Polynomial
from repro.store import ShieldStore, StoreError, SynthesisService


def ball(radius_sq: float, center: float = 0.0) -> Invariant:
    barrier = Polynomial.quadratic_form(np.eye(2), center=[center, center])
    return Invariant(barrier=barrier - radius_sq)


def main() -> int:
    env = make_environment("satellite")
    oracle = make_lqr_policy(env)

    # 1. Synthesize, persist, lint the store. -------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        service = SynthesisService(store=ShieldStore(tmp))
        config = CEGISConfig(
            seed=8,
            synthesis=SynthesisConfig(iterations=5, warm_start_samples=200),
            replay_prewarm_samples=0,
        )
        result = service.synthesize(env, oracle, config=config, environment="satellite")
        print(f"synthesized shield {result.key[:12]} "
              f"({result.program_size} branch(es), "
              f"{result.artifact.metadata['statically_pruned']} candidate(s) "
              f"statically pruned)")
        for entry, report in lint_store(service.store):
            print(f"  lint: {report.pretty()}")

        # 3. The gate: error-severity findings reject at put time. ----------
        rogue = ShieldArtifact(
            program=GuardedProgram(
                branches=[(ball(1.0), AffineProgram(gain=[[0.0, 0.0]], bias=[100.0]))]
            ),
            invariant=InvariantUnion([ball(1.0)]),
            environment="satellite",
        )
        try:
            service.store.put(rogue)
        except StoreError as error:
            print(f"store gate: {error}")

    # 2. Coded diagnostics on defective programs. ---------------------------
    saturating = AffineProgram(gain=[[0.0, 0.0]], bias=[100.0])  # bounds are +-10
    dead_branch = GuardedProgram(
        branches=[(ball(0.01, center=50.0), AffineProgram(gain=[[0.0, 0.0]]))],
        fallback=AffineProgram(gain=[[0.0, 0.0]]),
    )
    uncovered = GuardedProgram(
        branches=[(ball(0.05, center=0.45), AffineProgram(gain=[[0.0, 0.0]]))],
        fallback=None,
        strict=True,
    )
    poisoned = AffineProgram(gain=[[float("nan"), 0.0]])
    for label, program in (
        ("saturating", saturating),
        ("dead branch", dead_branch),
        ("uncovered strict dispatch", uncovered),
        ("nan gain", poisoned),
    ):
        report = analyze_program(program, env=env, subject=label)
        print(report.pretty())

    # 4. Static refutation by interval reachability. ------------------------
    destabilizing = AffineProgram(gain=5.0 * np.abs(oracle.gain))
    region = Box(low=(0.3375, 0.3375), high=(0.4625, 0.4625))
    print("refutation (destabilizing):",
          statically_refuted(env, destabilizing, region, steps=48))
    print("refutation (LQR):",
          statically_refuted(env, AffineProgram(gain=oracle.gain), region, steps=48))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
