#!/usr/bin/env python3
"""A tour of the policy programming language (Fig. 5): parse, print, serialize, audit.

Synthesized shields are ordinary policy-language programs, which means they can
be written down, reviewed by a human, stored in version control, and loaded back
without re-running CEGIS.  This example:

1. writes the paper's §5 pendulum program as plain text and parses it,
2. evaluates it against the environment model,
3. serializes the program + invariant to a JSON shield artifact, and
4. reloads the artifact and audits it against verification conditions (8)-(10).

Run with:  python examples/policy_language_tour.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import make_environment
from repro.certificates import audit_invariant
from repro.lang import (
    InvariantUnion,
    ShieldArtifact,
    load_artifact,
    parse_invariant,
    parse_program,
    save_artifact,
)

# The first two branches of the synthesized program reported in §5 (coefficients
# truncated to the quadratic terms for readability — the shape is what matters).
PENDULUM_PROGRAM = """
def P(eta, omega):
    if 1928*eta^2 + 1915*eta*omega + 1104*omega^2 - 313 <= 0:
        return -17.28176866*eta - 10.09441768*omega
    elif 484*eta^2 + 170*eta*omega + 287*omega^2 - 82 <= 0:
        return -17.34281984*eta - 10.73944835*omega
    else: abort   # unreachable from S0 (Theorem 4.2)
"""


def main() -> None:
    env = make_environment("pendulum")

    # 1. Parse the textual program back into an executable GuardedProgram.
    program = parse_program(PENDULUM_PROGRAM)
    print("Parsed program with", len(program.branches), "branches:")
    print(program.pretty(("eta", "omega")))

    # 2. Run it in the environment model.
    trajectory = env.simulate(program, steps=300, initial_state=np.array([0.2, -0.1]))
    print(
        f"\nsimulated 300 steps: final state = {np.round(trajectory.states[-1], 4).tolist()}, "
        f"unsafe steps = {trajectory.unsafe_steps}"
    )

    # 3. Bundle the program and its branch invariants into a shield artifact.
    invariants = InvariantUnion([invariant for invariant, _ in program.branches])
    artifact = ShieldArtifact(
        program=program,
        invariant=invariants,
        environment="pendulum",
        metadata={"source": "paper §5 case study (quadratic truncation)"},
    )
    path = Path(tempfile.mkdtemp()) / "pendulum_shield.json"
    save_artifact(artifact, path)
    print(f"\nsaved shield artifact to {path} ({path.stat().st_size} bytes)")

    # 4. Reload and audit each branch against the verification conditions.
    #    The audit is the point of this step: the program text above truncates
    #    the paper's invariants to their quadratic terms (and our pendulum model
    #    is parameterised slightly differently), so these hand-written invariants
    #    are NOT valid certificates for this model — and the audit says so.
    #    Artifacts produced by `synthesize_shield` / `python -m repro synthesize`
    #    pass this audit (see examples/custom_environment.py).
    restored = load_artifact(path)
    for index, (invariant, branch_program) in enumerate(restored.program.branches):
        report = audit_invariant(env, branch_program, invariant, max_boxes=20_000)
        print(f"audit of branch {index}: {report.summary()}")
        for detail in report.details:
            print("   ", detail)
    print(
        "\n(The FAIL verdicts above are expected: importing a program text does not\n"
        " import a proof — re-run verification, or synthesize the artifact with the\n"
        " toolchain, before deploying it as a shield.)"
    )

    # 5. Invariants are first-class too: parse one and query it directly.
    invariant = parse_invariant("eta^2 + omega^2 - 0.16 <= 0", names=["eta", "omega"])
    print("\nparsed invariant holds at the origin:", invariant.holds([0.0, 0.0]))
    print("parsed invariant holds at (0.5, 0.5):", invariant.holds([0.5, 0.5]))


if __name__ == "__main__":
    main()
