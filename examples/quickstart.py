#!/usr/bin/env python3
"""Quickstart: synthesize a verified safety shield for an inverted pendulum.

This walks through the full pipeline of the paper on the running example:

1. build the environment context (state transition system + S0 + Su),
2. train a neural control policy (the *oracle*),
3. synthesize a deterministic program + inductive invariant with CEGIS,
4. deploy the pair as a runtime shield and compare the three policies
   (bare network, shielded network, program alone).

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CEGISConfig,
    EvaluationProtocol,
    SynthesisConfig,
    VerificationConfig,
    compare_shielded,
    make_environment,
    synthesize_shield,
    train_oracle,
)
from repro.core import DistanceConfig


def main() -> None:
    # 1. The environment context C: the restricted (23 degree) inverted pendulum.
    env = make_environment("pendulum")
    print("Environment:", env.describe())

    # 2. A neural oracle.  `method="ddpg"` reproduces the paper's trainer;
    #    the default behaviour-cloned oracle is used here so the example
    #    finishes in well under a minute.
    oracle = train_oracle(env, hidden_sizes=(64, 48), seed=0).policy
    print("Oracle:", oracle.describe())

    # 3. CEGIS: synthesize a deterministic program and verify it with an
    #    inductive invariant (degree-4 polynomial barrier certificate).
    config = CEGISConfig(
        synthesis=SynthesisConfig(
            iterations=10,
            distance=DistanceConfig(num_trajectories=2, trajectory_length=80),
        ),
        verification=VerificationConfig(backend="barrier", invariant_degree=4),
        max_counterexamples=8,
    )
    result = synthesize_shield(env, oracle, config=config)
    print(f"\nSynthesized {result.program_size} verified branch(es) "
          f"in {result.synthesis_seconds:.1f}s:\n")
    print(result.pretty_program())

    # 4. Deploy the shield and measure what Table 1 measures.
    protocol = EvaluationProtocol(episodes=10, steps=300, seed=1)
    comparison = compare_shielded(env, oracle, result.shield, protocol)
    print("\n--- deployment summary ---")
    print(f"bare network failures:      {comparison.neural.failures}")
    print(f"shielded network failures:  {comparison.shielded.failures}")
    print(f"program-alone failures:     {comparison.program.failures}")
    print(f"shield interventions:       {comparison.shielded.interventions} "
          f"of {comparison.shielded.total_decisions} decisions")
    print(f"shield overhead:            {100 * comparison.overhead:.1f}%")
    print(f"steps to steady state:      shielded NN {comparison.shielded.mean_steps_to_steady:.0f} "
          f"vs program {comparison.program.mean_steps_to_steady:.0f}")


if __name__ == "__main__":
    main()
