#!/usr/bin/env python3
"""Counterexample-guided synthesis on the Duffing oscillator (Example 4.3 / Fig. 6).

The Duffing oscillator needs more than one verified region to cover its initial
state space: the first synthesized linear policy is only verified on part of
S0, so CEGIS samples a counterexample initial state and synthesizes a second
policy whose invariant covers the rest.  The final guarded program mirrors the
``P_oscillator`` listing in the paper.

Run with:  python examples/duffing_cegis.py
"""

from repro import CEGISConfig, SynthesisConfig, VerificationConfig, train_oracle
from repro.core import CEGISLoop, DistanceConfig
from repro.envs import make_duffing


def main() -> None:
    env = make_duffing()
    print("Environment:", env.describe())
    oracle = train_oracle(env, hidden_sizes=(64, 48), seed=0).policy

    config = CEGISConfig(
        synthesis=SynthesisConfig(
            iterations=10,
            distance=DistanceConfig(num_trajectories=2, trajectory_length=80),
        ),
        verification=VerificationConfig(backend="barrier", invariant_degree=4),
        max_counterexamples=8,
    )
    result = CEGISLoop(env, oracle, config=config).run()

    print(f"\nCEGIS covered S0: {result.covered} "
          f"using {result.program_size} branch(es) "
          f"and {result.counterexamples_used} counterexample(s) "
          f"in {result.total_seconds:.1f}s\n")
    for index, branch in enumerate(result.branches, start=1):
        print(f"branch {index}: counterexample initial state "
              f"{[round(v, 3) for v in branch.counterexample.tolist()]}, "
              f"verified with the {branch.verification_backend} backend")
    print("\nSynthesized program (paper syntax):\n")
    print(result.program.pretty(env.state_names))


if __name__ == "__main__":
    main()
