"""Compiled execution layer: the same campaign, interpreted vs. compiled.

``repro.compile`` lowers a shield's program, invariants, and (where needed)
the environment's symbolic dynamics into fused NumPy kernels, then advances
the whole ``(episodes, state_dim)`` fleet one step per kernel call.  This
example runs one shielded campaign through both engines, shows the wall-clock
ratio and the identical safety counters, and peeks at the lowered artifact
tables and the process-wide kernel cache.

Run with: ``PYTHONPATH=src python examples/compiled_campaign.py``
"""

import time

import numpy as np

from repro import make_environment
from repro.compile import (
    compiled_program_for,
    interpreted,
    kernel_cache_stats,
    lower_program,
)
from repro.core import Shield
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.networks import MLP
from repro.rl.policies import NeuralPolicy
from repro.runtime import EvaluationProtocol, evaluate_policy


def make_shield(env):
    scale = env.action_high if env.action_high is not None else np.ones(env.action_dim)
    network = MLP(env.state_dim, (48, 32), env.action_dim, output_scale=scale, seed=0)
    program = AffineProgram(
        gain=np.full((env.action_dim, env.state_dim), -0.4), names=env.state_names
    )
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(env.state_dim)) - 0.5,
        names=env.state_names,
    )
    return Shield(
        env=env,
        neural_policy=NeuralPolicy(network),
        program=GuardedProgram(branches=[(invariant, program)], names=env.state_names),
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


def main():
    env = make_environment("8_car_platoon")
    protocol = EvaluationProtocol(episodes=100, steps=250, seed=0)

    # 1. The interpreted reference: tree-walking programs and barrier tables.
    shield = make_shield(env)
    start = time.perf_counter()
    with interpreted():
        slow = evaluate_policy(env, shield, protocol, shield=shield)
    interpreted_seconds = time.perf_counter() - start

    # 2. The compiled engine (the default): one fused kernel per step.
    shield = make_shield(env)
    start = time.perf_counter()
    fast = evaluate_policy(env, shield, protocol, shield=shield)
    compiled_seconds = time.perf_counter() - start

    print(f"environment:            {env.name} (n={env.state_dim}, m={env.action_dim})")
    print(f"interpreted campaign:   {interpreted_seconds * 1000:7.1f} ms")
    print(f"compiled campaign:      {compiled_seconds * 1000:7.1f} ms")
    print(f"speedup:                {interpreted_seconds / compiled_seconds:7.2f}x")
    print(f"interventions:          {slow.interventions} == {fast.interventions}")
    unsafe_slow = sum(e.unsafe_steps for e in slow.episodes)
    unsafe_fast = sum(e.unsafe_steps for e in fast.episodes)
    print(f"unsafe steps:           {unsafe_slow} == {unsafe_fast}")

    # 3. What the lowering pass produced for the shield's fallback program.
    kernel = lower_program(shield.program)
    guard_block = kernel.guards._block
    exponents, coefficients, intercept = guard_block.table()
    print("\nlowered guard block:")
    print(f"  monomial table shape: {exponents.shape} (degree {guard_block.degree})")
    print(f"  coefficients shape:   {coefficients.shape}, intercept {intercept}")

    # 4. The process-wide kernel cache: compiled once, reused everywhere.
    compiled_program_for(shield.program)  # second lookup -> pure cache hit
    print(f"\nkernel cache:           {kernel_cache_stats()}")
    print("disable everywhere with REPRO_NO_COMPILE=1 (or repro --no-compile ...).")


if __name__ == "__main__":
    main()
