#!/usr/bin/env python3
"""Fleet-scale monitored deployment with adaptive shield maintenance.

The scalar runtime monitor (``examples/runtime_monitoring.py``) watches one
episode; a production deployment watches a *fleet*.  This walkthrough runs the
full maintenance loop on the satellite benchmark:

1. deploy a shield over a 200-episode monitored batched fleet, stressed by a
   uniform disturbance class the shield was never synthesized for;
2. fit the fleet's residuals into the paper's multivariate-normal disturbance
   estimate (Section 3);
3. re-check the deployed certificate under the widened bound
   (``verify_program`` with the disturbance-aware Lyapunov backend);
4. when the certificate no longer holds, re-synthesize through the
   store-backed ``SynthesisService`` and persist the repaired shield with
   provenance linking it to the estimate that forced it.

Run with:  python examples/monitored_deployment.py
"""

import tempfile

import numpy as np

from repro.core import (
    CEGISConfig,
    DistanceConfig,
    Shield,
    SynthesisConfig,
    VerificationConfig,
)
from repro.envs import BoundedUniformDisturbance, make_environment
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.policies import LinearPolicy
from repro.runtime import adapt_shield, monitor_fleet
from repro.store import ShieldStore, SynthesisService


def make_deployment():
    """A deployed shield with a *weak* program: certifiable for the nominal
    (disturbance-free) model, but with little contraction margin to spare."""
    env = make_environment("satellite")
    weak_program = AffineProgram(gain=[[-0.5, -0.3]], names=env.state_names)
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(2)) - 0.6, names=env.state_names
    )
    guarded = GuardedProgram(branches=[(invariant, weak_program)], names=env.state_names)
    oracle = LinearPolicy(gain=np.array([[-3.0, -2.5]]))
    shield = Shield(
        env=env,
        neural_policy=oracle,
        program=guarded,
        invariant=InvariantUnion([invariant]),
    )
    return env, shield, oracle


def main() -> None:
    env, shield, oracle = make_deployment()

    # ---- 1. monitor a fleet under an unmodelled disturbance class -----------
    wind = BoundedUniformDisturbance(magnitude=[0.08, 0.08])
    report = monitor_fleet(
        shield,
        episodes=200,
        steps=250,
        rng=np.random.default_rng(0),
        disturbance=wind,
    )
    print("--- fleet monitoring report (200 episodes x 250 steps) ---")
    for key, value in report.summary().items():
        print(f"{key:24s} {value}")

    # ---- 2-4. estimate -> re-verify -> re-synthesize ------------------------
    with tempfile.TemporaryDirectory() as tmp:
        service = SynthesisService(store=ShieldStore(tmp))
        config = CEGISConfig(
            synthesis=SynthesisConfig(
                iterations=8,
                distance=DistanceConfig(num_trajectories=2, trajectory_length=80),
                seed=0,
            ),
            verification=VerificationConfig(backend="lyapunov"),
            max_counterexamples=4,
        )
        outcome = adapt_shield(
            shield,
            episodes=50,
            steps=250,
            rng=np.random.default_rng(1),
            disturbance=wind,
            oracle=oracle,
            service=service,
            config=config,
            environment="satellite",
        )
        print("\n--- adaptation outcome ---")
        print("estimated bound      :", np.round(outcome.widened_bound, 4).tolist())
        print("certificate valid    :", outcome.certificate_valid)
        print("re-synthesized       :", outcome.resynthesized)
        if outcome.resynthesized:
            artifact = service.store.get(outcome.store_key)
            print("stored as            :", outcome.store_key[:12])
            print("provenance           :", {
                key: artifact.metadata[key]
                for key in ("adaptation", "estimate_samples", "estimated_bound")
            })
            print("repaired program     :")
            print(outcome.repaired_shield.program.pretty(env.state_names))
            print(
                "\nThe repaired shield is certified for the disturbances the fleet\n"
                "actually experienced, and its store entry records the estimate that\n"
                "forced the repair — `repro store show <key>` displays it."
            )


if __name__ == "__main__":
    main()
