#!/usr/bin/env python3
"""Runtime monitoring and disturbance estimation for a deployed shield.

The shield of Algorithm 3 decides with a *model*; a deployed system should also
watch *reality*.  This example deploys a shielded pendulum controller in an
environment with an unmodelled wind torque and shows how the runtime monitor

* counts interventions and locates them in the state space,
* detects excursions outside the inductive invariant (model mismatch), and
* estimates the disturbance bound online by multivariate-normal fitting
  (Section 3 of the paper), which can then be fed back into re-verification.

Run with:  python examples/runtime_monitoring.py
"""

import numpy as np

from repro import (
    CEGISConfig,
    SynthesisConfig,
    VerificationConfig,
    make_environment,
    synthesize_shield,
    train_oracle,
)
from repro.core import DistanceConfig
from repro.envs import TruncatedGaussianDisturbance
from repro.runtime import RuntimeMonitor


def main() -> None:
    env = make_environment("pendulum")
    oracle = train_oracle(env, hidden_sizes=(48, 32), seed=0).policy

    config = CEGISConfig(
        synthesis=SynthesisConfig(
            iterations=8, distance=DistanceConfig(num_trajectories=2, trajectory_length=80)
        ),
        verification=VerificationConfig(backend="barrier", invariant_degree=4),
    )
    result = synthesize_shield(env, oracle, config=config)
    print(f"synthesized a shield with {result.program_size} branch(es)")

    # Deploy against an environment with an unmodelled wind torque acting on the
    # angular acceleration (mean 0.4 rad/s^2, std 0.2).
    wind = TruncatedGaussianDisturbance(mean=[0.0, 0.4], std=[0.0, 0.2])
    monitor = RuntimeMonitor(result.shield, estimate_disturbance=True)
    rng = np.random.default_rng(7)
    state = env.sample_initial_state(rng)
    for step in range(2000):
        action = monitor.act(state)
        rate = env.rate_numeric(state, action) + wind.sample(rng, step)
        state = state + env.dt * rate
        monitor.observe_transition(state)

    report = monitor.report()
    print("\n--- monitoring report (2000 decisions) ---")
    for key, value in report.summary().items():
        print(f"{key:24s} {value}")

    if report.interventions:
        states = report.intervention_states()
        print(
            "interventions concentrated around |eta| ="
            f" {np.abs(states[:, 0]).mean():.3f} rad on average"
        )

    estimate = report.disturbance_estimate
    if estimate is not None:
        print("\nestimated disturbance:", estimate.describe())
        print("true wind bound       :", wind.bound().tolist())
        print(
            "Feeding `estimate.bound` back into env.disturbance_bound and re-running\n"
            "verification (condition (10) supports bounded disturbances) would produce\n"
            "a shield that is sound for this windy deployment context."
        )


if __name__ == "__main__":
    main()
