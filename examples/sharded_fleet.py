"""Sharded fleet execution: the same campaign, one process vs. a worker pool.

``repro.shard`` splits an ``(episodes, state_dim)`` fleet into contiguous
episode shards, runs each shard's fused closed-loop kernel in a persistent
pool of fork-inherited worker processes writing into one shared-memory arena,
and merges the per-episode arrays, process-wide counters, and disturbance
residual moments deterministically.  The shard plan is independent of the
worker count, so the counters below come out *bit-identical* whether one
process drains every shard or a pool of workers splits them.

Run with: ``PYTHONPATH=src python examples/sharded_fleet.py``
"""

import numpy as np

from repro import make_environment
from repro.core import Shield
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.networks import MLP
from repro.rl.policies import NeuralPolicy
from repro.shard import ShardPool, monitor_fleet_sharded, run_sharded_campaign


def make_shield(env, seed=0):
    rng = np.random.default_rng(seed)
    scale = env.action_high if env.action_high is not None else np.ones(env.action_dim)
    network = MLP(env.state_dim, (48, 32), env.action_dim, output_scale=scale, seed=seed)
    program = AffineProgram(
        gain=rng.normal(scale=0.2, size=(env.action_dim, env.state_dim)),
        names=env.state_names,
    )
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(env.state_dim)) - 0.5,
        names=env.state_names,
    )
    return Shield(
        env=env,
        neural_policy=NeuralPolicy(network),
        program=GuardedProgram(branches=[(invariant, program)], names=env.state_names),
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


def main():
    env = make_environment("pendulum")
    episodes, steps = 2000, 100

    # 1. The same shielded campaign at two worker counts — identical counters.
    results = {}
    for workers in (1, 4):
        result = run_sharded_campaign(
            env, shield=make_shield(env), episodes=episodes, steps=steps, seed=0, workers=workers
        )
        results[workers] = result
        print(
            f"workers={workers} ({result.stats['mode']:>10}): "
            f"{result.episodes_per_second:8.0f} episodes/s, "
            f"failures={result.failures}, interventions={result.total_interventions}, "
            f"shards={result.stats['shard_episodes']}"
        )
    assert np.array_equal(results[1].total_rewards, results[4].total_rewards)
    assert np.array_equal(results[1].unsafe_counts, results[4].unsafe_counts)
    print("counters bit-identical across worker counts\n")

    # 2. A persistent pool amortises worker fork + kernel compilation across
    #    runs — the natural shape for sweeping seeds or fleet widths.
    with ShardPool(env, shield=make_shield(env), workers=4) as pool:
        for seed in range(3):
            result = pool.run_campaign(episodes, steps, seed=seed)
            print(
                f"seed={seed}: mean return {np.mean(result.total_rewards):10.2f}, "
                f"{result.episodes_per_second:8.0f} episodes/s"
            )
    print()

    # 3. Monitored fleets shard too: residual moments merge in shard order, so
    #    the disturbance estimate matches the single-process fit exactly.
    report = monitor_fleet_sharded(
        make_shield(env), episodes=episodes, steps=steps, seed=0, workers=4
    )
    estimate = report.disturbance_estimate
    print(
        f"monitored: interventions={report.total_interventions}, "
        f"mismatches={report.total_model_mismatches}, "
        f"estimate over {estimate.samples if estimate else 0} residuals"
    )

    # 4. Float32 workspaces halve rollout memory traffic; safety counters stay
    #    validated against the float64 reference in tests/test_shard.py.
    f32 = run_sharded_campaign(
        env,
        shield=make_shield(env),
        episodes=episodes,
        steps=steps,
        seed=0,
        workers=4,
        dtype=np.float32,
    )
    print(f"float32: {f32.episodes_per_second:.0f} episodes/s (dtype={f32.stats['dtype']})")


if __name__ == "__main__":
    main()
