#!/usr/bin/env python3
"""Stability-constrained program synthesis (the paper's supplementary extension).

Safety (never reach ``Su``) and stability (converge to the equilibrium) are
different guarantees.  The paper's supplementary material extends the synthesis
procedure to programs that *provably stabilise* the system; this example
reproduces that extension on two benchmarks:

1. the inverted pendulum — the synthesized program carries a quadratic Lyapunov
   certificate whose decrease is verified for the true polynomial closed loop;
2. the satellite with a deliberately destabilising oracle — the synthesizer
   detects that pure imitation cannot be certified and blends the gain towards
   LQR until a certificate exists.

Run with:  python examples/stability_synthesis.py
"""

import numpy as np

from repro import make_environment, train_oracle
from repro.core import (
    StableSynthesisConfig,
    SynthesisConfig,
    synthesize_stable_program,
    verify_stability,
)
from repro.core.distance import DistanceConfig
from repro.lang import AffineProgram


def pendulum_case() -> None:
    env = make_environment("pendulum")
    oracle = train_oracle(env, hidden_sizes=(48, 32), seed=0).policy
    config = StableSynthesisConfig(
        synthesis=SynthesisConfig(
            iterations=10, distance=DistanceConfig(num_trajectories=2, trajectory_length=80)
        )
    )
    result = synthesize_stable_program(env, oracle, config=config)
    print("pendulum program :", result.program.pretty(env.state_names))
    print("certificate      :", result.certificate.describe())
    print("LQR blending used:", result.used_lqr_blending)

    trajectory = env.simulate(result.program, steps=600, initial_state=np.array([0.25, 0.1]))
    lyapunov = [result.certificate.lyapunov_value(s) for s in trajectory.states]
    print(
        f"Lyapunov value along a rollout: {lyapunov[0]:.4f} -> {lyapunov[-1]:.6f} "
        f"(final state {np.round(trajectory.states[-1], 4).tolist()})"
    )


def destabilising_oracle_case() -> None:
    env = make_environment("satellite")
    bad_oracle = AffineProgram(gain=3.0 * np.ones((env.action_dim, env.state_dim)))
    raw_check = verify_stability(env, bad_oracle)
    print("\nraw destabilising gain certified stable?", raw_check.stable)
    print("reason:", raw_check.failure_reason)

    config = StableSynthesisConfig(
        synthesis=SynthesisConfig(iterations=5, distance=DistanceConfig(num_trajectories=2))
    )
    result = synthesize_stable_program(env, bad_oracle, config=config)
    print(
        f"after blending towards LQR (weight {result.blend_weight:.2f}) the program is "
        f"certified with spectral radius {result.certificate.spectral_radius:.4f}"
    )


def main() -> None:
    pendulum_case()
    destabilising_oracle_case()


if __name__ == "__main__":
    main()
