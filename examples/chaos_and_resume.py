"""Chaos testing and crash-safe resume: break a campaign on purpose, recover it.

``repro.faults`` scripts the failures long campaigns actually die of — a
worker killed mid-shard, a hang, a flaky disk — and the recovery machinery
(per-shard retries under a ``RetryPolicy``, the guaranteed inline lane,
fsynced checkpoint journals) puts the run back together *bit-identically*.
This walkthrough:

1. runs a sharded campaign fault-free, then again under an injected worker
   crash and a transient ``OSError``, and diffs every counter;
2. checkpoints a campaign to a shard manifest, truncates the manifest as a
   SIGKILL would, and resumes — only the missing shards re-execute;
3. corrupts a stored shield artifact on disk and fscks the store back to
   health.

Run with: ``PYTHONPATH=src python examples/chaos_and_resume.py``
"""

import tempfile
import warnings
from pathlib import Path

import numpy as np

from repro import make_environment
from repro.core import Shield
from repro.faults import FaultPlan, FaultSpec, RetryPolicy, fault_plan
from repro.lang import AffineProgram, GuardedProgram, Invariant, InvariantUnion
from repro.polynomials import Polynomial
from repro.rl.networks import MLP
from repro.rl.policies import NeuralPolicy
from repro.shard import run_sharded_campaign
from repro.store import CorruptArtifactError, ShieldStore

FIELDS = ("total_rewards", "unsafe_counts", "interventions", "steady_at")


def make_shield(env, seed=0):
    rng = np.random.default_rng(seed)
    scale = env.action_high if env.action_high is not None else np.ones(env.action_dim)
    network = MLP(env.state_dim, (48, 32), env.action_dim, output_scale=scale, seed=seed)
    program = AffineProgram(
        gain=rng.normal(scale=0.2, size=(env.action_dim, env.state_dim)),
        names=env.state_names,
    )
    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(env.state_dim)) - 0.5,
        names=env.state_names,
    )
    return Shield(
        env=env,
        neural_policy=NeuralPolicy(network),
        program=GuardedProgram(branches=[(invariant, program)], names=env.state_names),
        invariant=InvariantUnion([invariant]),
        measure_time=False,
    )


def campaign(env, checkpoint=None, resume=False):
    return run_sharded_campaign(
        env,
        shield=make_shield(env),
        episodes=400,
        steps=60,
        seed=0,
        workers=2,
        shards=4,
        retry=RetryPolicy(max_attempts=3, backoff_seconds=0.05),
        checkpoint=checkpoint,
        resume=resume,
    )


def identical(a, b):
    return all(np.array_equal(getattr(a, f), getattr(b, f)) for f in FIELDS)


def main():
    env = make_environment("pendulum")
    baseline = campaign(env)
    print(f"fault-free: failures={baseline.failures}, "
          f"interventions={baseline.total_interventions}")

    # 1. Crash a worker mid-shard, then inject a transient OSError.  Recovery
    #    retries only the failed shard; the counters come out bit-identical.
    for kind, index in (("crash", 2), ("oserror", 0)):
        plan = FaultPlan(specs=[FaultSpec(site="shard.worker", kind=kind, index=index)])
        with fault_plan(plan), warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # recovery warns
            recovered = campaign(env)
        events = recovered.stats["faults"]
        print(f"{kind:>8} at shard {index}: bit-identical={identical(baseline, recovered)}, "
              f"executions={recovered.stats['shard_executions']}, "
              f"recovery={[e['outcome'] for e in events]}")

    with tempfile.TemporaryDirectory() as workdir:
        workdir = Path(workdir)

        # 2. Checkpoint each completed shard; truncate the manifest as a
        #    SIGKILL would; resume re-executes only what is missing.
        manifest = workdir / "campaign.manifest"
        campaign(env, checkpoint=manifest)
        lines = manifest.read_text().splitlines()
        manifest.write_text("\n".join(lines[:-2]) + "\n")  # lose the last 2 shards
        resumed = campaign(env, checkpoint=manifest, resume=True)
        print(f"resume after kill: bit-identical={identical(baseline, resumed)}, "
              f"origins={resumed.stats['shard_origins']}, "
              f"executions={resumed.stats['shard_executions']}")

        # 3. Corrupt a stored artifact on disk; fsck detects it, names the
        #    damaged path and expected key, and quarantines the bad object.
        store = ShieldStore(workdir / "store")
        key = store.put(make_artifact(env))
        path = store._path_for(key)
        path.write_text(path.read_text()[:50])
        try:
            store.get(key)
        except CorruptArtifactError as error:
            print(f"corrupt read: {error}")
        ok, corrupt = store.fsck(delete_corrupt=True)
        print(f"fsck: {len(ok)} ok, quarantined={[c['key'][:12] for c in corrupt]}")


def make_artifact(env):
    from repro.lang import ShieldArtifact

    invariant = Invariant(
        barrier=Polynomial.quadratic_form(np.eye(env.state_dim)) - 0.5,
        names=env.state_names,
    )
    program = AffineProgram(
        gain=np.zeros((env.action_dim, env.state_dim)), names=env.state_names
    )
    return ShieldArtifact(
        program=GuardedProgram(branches=[(invariant, program)], names=env.state_names),
        invariant=InvariantUnion([invariant]),
        environment="chaos_example",  # non-registry label: nothing to lint against
    )


if __name__ == "__main__":
    main()
