#!/usr/bin/env python3
"""Bring your own environment: shield a controller for a system the paper never saw.

The toolchain is not tied to the fifteen benchmark models — any infinite-state
transition system written as an :class:`~repro.envs.EnvironmentContext` can be
shielded.  This example builds a *damped Duffing-style beam* from scratch:

    ẋ = v
    v̇ = -2ζ v - x - 0.5 x³ + a          (|a| ≤ 4)

with initial states ``|x|, |v| ≤ 0.6`` and unsafe states ``|x| ≥ 2 or |v| ≥ 2``,
then runs the full pipeline: oracle → CEGIS → verified program → audited shield.

Run with:  python examples/custom_environment.py
"""

from typing import List, Sequence

import numpy as np

from repro import (
    CEGISConfig,
    EvaluationProtocol,
    SynthesisConfig,
    VerificationConfig,
    compare_shielded,
    synthesize_shield,
    train_oracle,
)
from repro.certificates import Box, audit_shield
from repro.core import DistanceConfig
from repro.envs import EnvironmentContext


class DampedBeam(EnvironmentContext):
    """A nonlinear second-order beam with cubic stiffness (polynomial dynamics)."""

    def __init__(self, damping: float = 0.4, dt: float = 0.01) -> None:
        self.damping = float(damping)
        super().__init__(
            state_dim=2,
            action_dim=1,
            init_region=Box((-0.6, -0.6), (0.6, 0.6)),
            safe_box=Box((-2.0, -2.0), (2.0, 2.0)),
            domain=Box((-4.0, -4.0), (4.0, 4.0)),
            dt=dt,
            action_low=[-4.0],
            action_high=[4.0],
            steady_state_tolerance=0.05,
        )
        self.name = "damped_beam"
        self.state_names = ("x", "v")

    def rate(self, state: Sequence, action: Sequence) -> List:
        x, v = state
        force = action[0]
        acceleration = -2.0 * self.damping * v - x - 0.5 * (x * x * x) + force
        return [v, acceleration]


def main() -> None:
    env = DampedBeam()
    print("Environment:", env.describe())

    # A neural oracle cloned from the linearised LQR teacher (seconds, not minutes).
    oracle = train_oracle(env, hidden_sizes=(48, 32), seed=0).policy
    print("Oracle:", oracle.describe())

    config = CEGISConfig(
        synthesis=SynthesisConfig(
            iterations=10,
            distance=DistanceConfig(num_trajectories=2, trajectory_length=80),
        ),
        verification=VerificationConfig(backend="barrier", invariant_degree=4),
        max_counterexamples=8,
    )
    result = synthesize_shield(env, oracle, config=config)
    print(f"\nSynthesized {result.program_size} verified branch(es):\n")
    print(result.pretty_program())

    # Independent audit of every branch against verification conditions (8)-(10).
    reports = audit_shield(env, result.program, max_boxes=40_000)
    for index, report in enumerate(reports):
        print(f"audit branch {index}: {report.summary()}")

    protocol = EvaluationProtocol(episodes=10, steps=300, seed=1)
    comparison = compare_shielded(env, oracle, result.shield, protocol)
    print("\n--- deployment summary ---")
    print(f"bare network failures:     {comparison.neural.failures}")
    print(f"shielded network failures: {comparison.shielded.failures}")
    print(f"interventions:             {comparison.shielded.interventions}")
    print(f"overhead:                  {100 * comparison.overhead:.1f}%")


if __name__ == "__main__":
    main()
