"""Walkthrough: the shield artifact store, parallel CEGIS, and replay cache.

This example runs the full service-layer loop on the satellite benchmark:

1. synthesize a shield through :class:`~repro.store.SynthesisService` with
   ``workers=2`` and the counterexample replay cache enabled, persisting the
   result (program + invariant union + provenance) into a content-addressed
   :class:`~repro.store.ShieldStore`;
2. ask the service for the *same* shield again — a store hit that skips
   CEGIS entirely and deserializes in milliseconds;
3. re-verify the stored shield against the paper's conditions (8)-(10)
   without re-running synthesis (what ``repro store verify <key>`` does);
4. demonstrate the replay cache: record a trajectory witness from a
   destabilizing candidate and watch it refute the next candidate by a
   single batched rollout instead of a certificate search.

Run with ``PYTHONPATH=src python examples/store_and_replay.py``.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.baselines import make_lqr_policy
from repro.core import (
    CEGISConfig,
    CounterexampleCache,
    DistanceConfig,
    SynthesisConfig,
    VerificationConfig,
)
from repro.envs import make_environment
from repro.lang import AffineProgram
from repro.store import ShieldStore, SynthesisService


def main() -> int:
    env = make_environment("satellite")
    oracle = make_lqr_policy(env)
    config = CEGISConfig(
        synthesis=SynthesisConfig(
            iterations=5,
            distance=DistanceConfig(num_trajectories=2, trajectory_length=40),
        ),
        verification=VerificationConfig(backend="lyapunov"),
        max_counterexamples=4,
    )

    store_dir = tempfile.mkdtemp(prefix="repro_store_")
    store = ShieldStore(store_dir)
    service = SynthesisService(store=store, workers=2)

    # -- 1. synthesize once, persist with provenance -----------------------
    first = service.synthesize(env, oracle, config=config, environment="satellite")
    print(f"synthesized: {first.program_size} branch(es) in {first.total_seconds:.2f}s")
    print(f"stored as    {first.key[:12]} under {store.root}")
    print(f"provenance   {first.artifact.metadata}")

    # -- 2. the same request again is a store hit --------------------------
    second = service.synthesize(env, oracle, config=config, environment="satellite")
    print(
        f"reloaded     from_store={second.from_store} in {second.total_seconds*1e3:.1f} ms"
        f" (no CEGIS ran)"
    )

    # -- 3. re-verify the stored shield, no synthesis ----------------------
    all_ok, reports = service.reverify(first.key)
    print(f"re-verified  {'PASS' if all_ok else 'FAIL'} ({len(reports)} branch(es))")

    # -- 4. the replay cache in isolation ----------------------------------
    cache = CounterexampleCache(environment="satellite", horizon=300)
    unstable = AffineProgram(gain=-4.0 * np.asarray(oracle.gain))
    cache.probe(env, unstable, env.init_region)  # harvest witnesses by simulation
    refuter = cache.replay(env, unstable, env.init_region)
    print(
        f"replay       {cache.witness_count} witness(es); candidate refuted from "
        f"{np.round(refuter, 3).tolist()} (hits={cache.hits}) — verification skipped"
    )
    safe_check = cache.replay(env, oracle, env.init_region)
    print(f"replay       safe program not refuted (result={safe_check}) — verifier runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
